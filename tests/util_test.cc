// Unit tests for the utility layer: RNG, histogram, time series, status,
// hashing and unit formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/hash.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timeseries.h"
#include "util/units.h"

namespace epx {
namespace {

// ---------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
    const int64_t v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversFullRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// ---------------------------------------------------------- Histogram --

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 1000, 1000 * 0.07);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (Tick v = 0; v < 16; ++v) h.record(v);
  // Values below one sub-bucket span are stored exactly.
  EXPECT_EQ(h.quantile(0.0), 0);
  EXPECT_EQ(h.quantile(1.0), 15);
}

TEST(HistogramTest, QuantilePrecisionWithinBucketWidth) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.record(i * kMicrosecond);
  // p50 should be ~5000us within ~7% relative error (16 sub-buckets).
  const double p50 = static_cast<double>(h.p50());
  EXPECT_NEAR(p50, 5000.0 * kMicrosecond, 5000.0 * kMicrosecond * 0.07);
  const double p95 = static_cast<double>(h.p95());
  EXPECT_NEAR(p95, 9500.0 * kMicrosecond, 9500.0 * kMicrosecond * 0.07);
}

TEST(HistogramTest, QuantileIsCappedByMax) {
  Histogram h;
  h.record(100);
  h.record(1000000);
  EXPECT_LE(h.quantile(1.0), 1000000);
}

TEST(HistogramTest, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-50);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, MergeCombinesCounts) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(kMillisecond);
  for (int i = 0; i < 100; ++i) b.record(3 * kMillisecond);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.max(), 3 * kMillisecond);
  EXPECT_NEAR(a.mean(), 2.0 * kMillisecond, 0.2 * kMillisecond);
}

TEST(HistogramTest, RecordNIsEquivalentToLoop) {
  Histogram a, b;
  a.record_n(5 * kMillisecond, 50);
  for (int i = 0; i < 50; ++i) b.record(5 * kMillisecond);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.p50(), b.p50());
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.record(123456);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0);
}

TEST(HistogramTest, MeanMatchesArithmetic) {
  Histogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(HistogramTest, EmptyQuantilesAreAllZero) {
  Histogram h;
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 0) << "q=" << q;
  }
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.p99(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramTest, MergeOfDisjointRanges) {
  // Sub-microsecond values in one histogram, multi-second values in the
  // other: no shared buckets at all.
  Histogram low, high;
  for (int i = 0; i < 100; ++i) low.record(100 + i);
  for (int i = 0; i < 100; ++i) high.record(5 * kSecond + i * kMillisecond);
  low.merge(high);
  EXPECT_EQ(low.count(), 200u);
  EXPECT_EQ(low.min(), 100);
  EXPECT_GE(low.max(), 5 * kSecond);
  // The median sits at the junction: p50 from the low cluster's bucket,
  // p95 from the high cluster.
  EXPECT_LE(low.quantile(0.45), 250);
  EXPECT_GE(low.quantile(0.95), 5 * kSecond - kMillisecond);
  // Merging an empty histogram changes nothing.
  Histogram empty;
  const uint64_t before = low.count();
  low.merge(empty);
  EXPECT_EQ(low.count(), before);
  // Merging INTO an empty histogram adopts min/max wholesale.
  empty.merge(low);
  EXPECT_EQ(empty.count(), 200u);
  EXPECT_EQ(empty.min(), 100);
}

TEST(HistogramTest, AdvanceWindowMatchesDeltaSinceQuantiles) {
  // The scrape path's one-pass windowed quantiles must reproduce exactly
  // what materialising the delta histogram would report, window after
  // window, across very different value distributions per window.
  Histogram h;
  Histogram snap;
  static constexpr double kQs[3] = {0.50, 0.95, 0.99};
  uint64_t x = 0x243f6a8885a308d3ULL;  // deterministic xorshift stream
  for (int window = 0; window < 5; ++window) {
    const Histogram before = h;  // reference snapshot for delta_since
    const int n = 37 + 211 * window;
    for (int i = 0; i < n; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      // Windows 0,2,4 cluster near 1ms; windows 1,3 span up to ~4s.
      const Tick v = window % 2 == 0 ? kMillisecond + static_cast<Tick>(x % kMillisecond)
                                     : static_cast<Tick>(x % (4 * kSecond));
      h.record(v);
    }
    Tick q[3];
    const uint64_t total = h.advance_window(snap, kQs, 3, q);
    const Histogram delta = h.delta_since(before);
    EXPECT_EQ(total, delta.count()) << "window " << window;
    for (int k = 0; k < 3; ++k) {
      EXPECT_EQ(q[k], delta.quantile(kQs[k])) << "window " << window << " q=" << kQs[k];
    }
  }
  // advance_window left `snap` current: an immediately repeated window is
  // empty and reports all-zero quantiles.
  Tick q[3] = {1, 1, 1};
  EXPECT_EQ(h.advance_window(snap, kQs, 3, q), 0u);
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[2], 0);
}

TEST(HistogramTest, RecordNWithHugeCountsDoesNotOverflowCount) {
  Histogram h;
  const uint64_t huge = 1ULL << 62;
  h.record_n(kMillisecond, huge);
  h.record_n(2 * kMillisecond, huge);
  EXPECT_EQ(h.count(), 2 * huge);  // 2^63 fits in uint64_t
  // Quantiles still resolve to the recorded bucket range.
  EXPECT_GE(h.quantile(0.99), kMillisecond);
  EXPECT_LE(h.quantile(0.25), 2 * kMillisecond);
  // n == 0 is a no-op, not a min/max update.
  Histogram z;
  z.record_n(5 * kSecond, 0);
  EXPECT_EQ(z.count(), 0u);
  EXPECT_EQ(z.max(), 0);
}

// --------------------------------------------------------- TimeSeries --

TEST(WindowedCounterTest, BucketsEventsByWindow) {
  WindowedCounter c(kSecond);
  c.add(0, 5);
  c.add(999 * kMillisecond, 5);
  c.add(kSecond, 7);
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.count_at(0), 10u);
  EXPECT_EQ(c.count_at(1), 7u);
  EXPECT_DOUBLE_EQ(c.rate_at(0), 10.0);
  EXPECT_EQ(c.total(), 17u);
}

TEST(WindowedCounterTest, AverageRate) {
  WindowedCounter c(kSecond);
  for (int s = 0; s < 10; ++s) c.add(s * kSecond, 100);
  EXPECT_DOUBLE_EQ(c.average_rate(0, 10 * kSecond), 100.0);
  EXPECT_DOUBLE_EQ(c.average_rate(5 * kSecond, 10 * kSecond), 100.0);
  EXPECT_DOUBLE_EQ(c.average_rate(10 * kSecond, 20 * kSecond), 0.0);
}

TEST(WindowedCounterTest, NegativeTimeClampsToZero) {
  WindowedCounter c(kSecond);
  c.add(-5, 3);
  EXPECT_EQ(c.count_at(0), 3u);
}

TEST(WindowedCounterTest, ExactWindowBoundaryStartsNewWindow) {
  WindowedCounter c(kSecond);
  c.add(kSecond - 1, 1);  // last tick of window 0
  c.add(kSecond, 1);      // first tick of window 1
  c.add(2 * kSecond - 1, 1);
  c.add(2 * kSecond, 1);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.count_at(0), 1u);
  EXPECT_EQ(c.count_at(1), 2u);
  EXPECT_EQ(c.count_at(2), 1u);
  // total_in treats [from, to) half-open on window starts.
  EXPECT_EQ(c.total_in(0, kSecond), 1u);
  EXPECT_EQ(c.total_in(kSecond, 2 * kSecond), 2u);
  EXPECT_EQ(c.total_in(0, 2 * kSecond), 3u);
}

TEST(WindowedCounterTest, SparseAddsZeroFillSkippedWindows) {
  WindowedCounter c(kSecond);
  c.add(0, 2);
  c.add(5 * kSecond + 1, 4);
  ASSERT_EQ(c.size(), 6u);
  for (size_t i = 1; i < 5; ++i) EXPECT_EQ(c.count_at(i), 0u) << i;
  EXPECT_EQ(c.count_at(5), 4u);
  EXPECT_DOUBLE_EQ(c.average_rate(kSecond, 5 * kSecond), 0.0);
}

TEST(GaugeSeriesTest, AverageInWindow) {
  GaugeSeries g;
  g.sample(0, 1.0);
  g.sample(kSecond, 2.0);
  g.sample(2 * kSecond, 3.0);
  EXPECT_DOUBLE_EQ(g.average_in(0, 2 * kSecond), 1.5);
  EXPECT_DOUBLE_EQ(g.average_in(0, 3 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(g.average_in(5 * kSecond, 6 * kSecond), 0.0);
}

TEST(PhaseAveragesTest, SplitsAtBoundaries) {
  WindowedCounter c(kSecond);
  for (int s = 0; s < 4; ++s) c.add(s * kSecond, 100);
  for (int s = 4; s < 8; ++s) c.add(s * kSecond, 200);
  const auto phases = phase_averages(c, {4 * kSecond}, 8 * kSecond);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_DOUBLE_EQ(phases[0].rate, 100.0);
  EXPECT_DOUBLE_EQ(phases[1].rate, 200.0);
}

TEST(PhaseAveragesTest, UnsortedBoundariesAreSorted) {
  WindowedCounter c(kSecond);
  c.add(0, 10);
  const auto phases = phase_averages(c, {3 * kSecond, 1 * kSecond}, 5 * kSecond);
  ASSERT_EQ(phases.size(), 3u);
  EXPECT_EQ(phases[0].to, 1 * kSecond);
  EXPECT_EQ(phases[1].to, 3 * kSecond);
}

// ------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::timeout("no reply after 1s");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kTimeout);
  EXPECT_EQ(s.to_string(), "TIMEOUT: no reply after 1s");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r(Status::not_found("missing"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

// --------------------------------------------------------------- Hash --

TEST(HashTest, StableAcrossCalls) {
  EXPECT_EQ(key_hash("alpha"), key_hash("alpha"));
  EXPECT_NE(key_hash("alpha"), key_hash("beta"));
}

TEST(HashTest, KnownFnvVector) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
}

TEST(HashTest, SimilarKeysSpreadAcrossSpace) {
  // Sequential keys should land in different halves of the hash space
  // often enough for hash partitioning to balance.
  int upper = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    if (key_hash("key" + std::to_string(i)) > (~0ULL / 2)) ++upper;
  }
  EXPECT_NEAR(upper, n / 2, n / 10);
}

// -------------------------------------------------------------- Units --

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(1500 * kMillisecond), 1.5);
  EXPECT_DOUBLE_EQ(to_millis(2500 * kMicrosecond), 2.5);
  EXPECT_EQ(from_seconds(0.25), 250 * kMillisecond);
}

TEST(UnitsTest, DurationFormatting) {
  EXPECT_EQ(format_duration(1500 * kMillisecond), "1.500s");
  EXPECT_EQ(format_duration(2500 * kMicrosecond), "2.500ms");
  EXPECT_EQ(format_duration(1500), "1.500us");
  EXPECT_EQ(format_duration(999), "999ns");
}

TEST(UnitsTest, ByteFormatting) {
  EXPECT_EQ(format_bytes(512), "512B");
  EXPECT_EQ(format_bytes(32 * kKiB), "32.0KiB");
  EXPECT_EQ(format_bytes(3 * kMiB), "3.0MiB");
}

}  // namespace
}  // namespace epx
