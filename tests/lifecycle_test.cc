// Lifecycle tests: automatic log trimming, replica join via snapshot
// state transfer, and online shard merge.
#include <gtest/gtest.h>

#include "checker/order_checker.h"
#include "harness/kv_cluster.h"
#include "tests/test_util.h"

namespace epx {
namespace {

using harness::Cluster;
using harness::ClusterOptions;
using harness::KvCluster;
using harness::LoadClient;

class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override { testing::init_logging(); }

  template <typename Pred>
  bool run_until(Cluster& cluster, Pred pred, Tick limit) {
    const Tick deadline = cluster.now() + limit;
    while (cluster.now() < deadline) {
      if (pred()) return true;
      cluster.run_for(100 * kMillisecond);
    }
    return pred();
  }
};

TEST_F(LifecycleTest, AutoTrimBoundsAcceptorLogs) {
  ClusterOptions options;
  options.params.auto_trim = true;
  options.params.trim_interval = 1 * kSecond;
  options.params.trim_backlog = 500;
  Cluster cluster(options);
  const auto s1 = cluster.add_stream();
  cluster.add_replica(1, {s1});
  cluster.add_replica(1, {s1});

  LoadClient::Config cfg;
  cfg.threads = 8;
  cfg.payload_bytes = 256;
  cfg.route = [s1] { return s1; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();

  cluster.run_for(15 * kSecond);
  client->stop();
  cluster.run_for(3 * kSecond);

  // ~15s of load + pacing decides tens of thousands of instances; with
  // trimming the logs stay near the backlog bound.
  for (auto* acc : cluster.acceptors(s1)) {
    EXPECT_GT(acc->trim_horizon(), 0u) << acc->name();
    EXPECT_LT(acc->log_size(), 4000u) << acc->name() << " log not trimmed";
  }
}

TEST_F(LifecycleTest, TrimWaitsForSlowestLearner) {
  ClusterOptions options;
  options.params.auto_trim = true;
  options.params.trim_interval = 1 * kSecond;
  options.params.trim_backlog = 100;
  Cluster cluster(options);
  const auto s1 = cluster.add_stream();
  auto* r1 = cluster.add_replica(1, {s1});
  (void)r1;

  LoadClient::Config cfg;
  cfg.threads = 4;
  cfg.payload_bytes = 256;
  cfg.route = [s1] { return s1; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  cluster.run_for(10 * kSecond);
  client->stop();
  cluster.run_for(2 * kSecond);

  // The trim horizon never overtakes the learner's position.
  const auto accs = cluster.acceptors(s1);
  for (auto* acc : accs) {
    EXPECT_LE(acc->trim_horizon() + options.params.trim_backlog,
              acc->decided_contiguous() + options.params.trim_backlog + 1);
  }
}

TEST_F(LifecycleTest, NewSubscriberWorksAfterTrimming) {
  // A group subscribing to a heavily trimmed stream catches up from the
  // trim horizon (the app-level snapshot covers older state).
  ClusterOptions options;
  options.params.auto_trim = true;
  options.params.trim_interval = 1 * kSecond;
  options.params.trim_backlog = 300;
  Cluster cluster(options);
  const auto s1 = cluster.add_stream();
  const auto s2 = cluster.add_stream();
  auto* r1 = cluster.add_replica(1, {s1});

  LoadClient::Config cfg;
  cfg.threads = 4;
  cfg.payload_bytes = 256;
  cfg.route = [s2] { return s2; };  // build (and trim) S2 history
  auto* backlog = cluster.spawn<LoadClient>("backlog", &cluster.directory(), cfg);
  backlog->start();
  cluster.run_for(8 * kSecond);
  backlog->stop();

  cluster.controller().subscribe(1, s2, s1);
  EXPECT_TRUE(run_until(cluster, [&] { return r1->merger().subscribed_to(s2); },
                        20 * kSecond))
      << "subscription must complete against a trimmed stream";
}

TEST_F(LifecycleTest, ReplicaJoinsRunningGroupViaSnapshot) {
  KvCluster kvc;
  const uint32_t p1 = kvc.add_partition(2);
  kvc.publish();

  kv::KvClient::Config ccfg;
  ccfg.threads = 8;
  ccfg.key_space = 500;
  ccfg.value_bytes = 64;
  auto* client = kvc.add_client(ccfg);
  client->start();
  kvc.cluster().run_for(3 * kSecond);

  // Spawn a fresh replica with NO subscriptions and join it through the
  // snapshot protocol while writes continue.
  auto* donor = kvc.replicas_of(p1)[0];
  elastic::Replica::Config base;
  base.group = donor->group();
  base.params = kvc.cluster().options().params;
  kv::KvReplica::KvConfig kvcfg;
  kvcfg.partition_id = donor->partition_id();
  auto* joiner = kvc.cluster().spawn<kv::KvReplica>(
      "joiner", &kvc.cluster().directory(), base, kvcfg);
  joiner->join_via(donor->id());

  ASSERT_TRUE(run_until(kvc.cluster(), [&] { return joiner->joined(); }, 10 * kSecond));
  kvc.cluster().run_for(3 * kSecond);
  client->stop();
  kvc.cluster().run_for(2 * kSecond);

  // The joiner converged to the same store as the donor.
  EXPECT_GT(joiner->executed(), 0u) << "joiner must execute post-join commands";
  EXPECT_EQ(joiner->store(), donor->store());
}

TEST_F(LifecycleTest, OnlineShardMergeCombinesPartitions) {
  KvCluster kvc;
  const uint32_t p1 = kvc.add_partition(1);
  const uint32_t p2 = kvc.add_partition(1);
  kvc.publish();

  kv::KvClient::Config ccfg;
  ccfg.threads = 10;
  ccfg.key_space = 2000;
  ccfg.value_bytes = 64;
  ccfg.record_history = true;
  auto* client = kvc.add_client(ccfg);
  client->start();
  kvc.cluster().run_for(3 * kSecond);
  const uint64_t before = client->completed();
  EXPECT_GT(before, 200u);

  auto* survivor = kvc.replicas_of(p1)[0];
  kvc.begin_merge(p1, p2);
  ASSERT_TRUE(run_until(kvc.cluster(),
                        [&] { return survivor->merger().subscriptions().size() == 2; },
                        10 * kSecond))
      << "surviving shard must subscribe to the retiring shard's stream";
  kvc.flip_merge(p1, p2);
  kvc.cluster().run_for(2 * kSecond);  // drain the old stream
  kvc.finish_merge(p1, p2);
  ASSERT_TRUE(run_until(kvc.cluster(),
                        [&] { return survivor->merger().subscriptions().size() == 1; },
                        10 * kSecond));

  kvc.cluster().run_for(3 * kSecond);
  client->stop();
  kvc.cluster().run_for(2 * kSecond);

  EXPECT_EQ(kvc.map().partition_count(), 1u);
  EXPECT_GT(client->completed(), before + 500) << "service continues after the merge";
  // The survivor owns and serves the whole key space now.
  EXPECT_TRUE(survivor->owns(0));
  EXPECT_TRUE(survivor->owns(~0ULL));
  EXPECT_EQ(client->history().check(), "") << "merge must preserve linearizability";
}

}  // namespace
}  // namespace epx
