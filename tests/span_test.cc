// Causal span layer (obs/span.h): collector semantics, metric pairing,
// Chrome trace export structure, and an end-to-end traced mini-cluster.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/load_client.h"
#include "harness/report.h"
#include "obs/span.h"

namespace epx {
namespace {

using obs::SpanCollector;
using obs::SpanStage;

// --- collector semantics -------------------------------------------------

TEST(SpanCollectorTest, DisabledRecordsNothing) {
  SpanCollector spans;
  spans.record(7, SpanStage::kClientSend, 10, 1, 1);
  EXPECT_EQ(spans.recorded_events(), 0u);
  EXPECT_TRUE(spans.live().empty());
}

TEST(SpanCollectorTest, ZeroTraceIdIgnored) {
  SpanCollector spans;
  spans.set_enabled(true);
  spans.record(0, SpanStage::kClientSend, 10, 1, 1);
  EXPECT_EQ(spans.recorded_events(), 0u);
}

TEST(SpanCollectorTest, DuplicateStageNodeFirstWins) {
  SpanCollector spans;
  spans.set_enabled(true);
  spans.record(7, SpanStage::kClientSend, 10, 1, 1);
  spans.record(7, SpanStage::kClientSend, 99, 1, 1);  // client retry
  const auto& rec = spans.live().at(7);
  ASSERT_EQ(rec.events.size(), 1u);
  EXPECT_EQ(rec.events[0].time, 10);
  // Same stage on a *different* node is a distinct event (two replicas
  // both deliver the same message).
  spans.record(7, SpanStage::kDeliver, 20, 2, 1);
  spans.record(7, SpanStage::kDeliver, 21, 3, 1);
  EXPECT_EQ(spans.live().at(7).events.size(), 3u);
}

TEST(SpanCollectorTest, NoStreamInheritsFirstEventStream) {
  SpanCollector spans;
  spans.set_enabled(true);
  spans.record(7, SpanStage::kClientSend, 10, 1, /*stream=*/4);
  spans.record(7, SpanStage::kReply, 50, 1, obs::kSpanNoStream);
  const auto& rec = spans.live().at(7);
  EXPECT_EQ(rec.events[1].stream, 4u);
}

TEST(SpanCollectorTest, PublishesStageTimers) {
  obs::MetricsRegistry metrics;
  SpanCollector spans;
  spans.set_enabled(true);
  spans.bind_metrics(&metrics);

  // One full lifecycle on stream 4, delivered by nodes 20 and 21.
  spans.record(7, SpanStage::kClientSend, 100, 1, 4);
  spans.record(7, SpanStage::kPropose, 130, 10, 4);
  spans.record(7, SpanStage::kDecide, 190, 11, 4);
  spans.record(7, SpanStage::kLearn, 220, 20, 4);
  spans.record(7, SpanStage::kLearn, 230, 21, 4);
  spans.record(7, SpanStage::kDeliver, 300, 20, 4);
  spans.record(7, SpanStage::kDeliver, 330, 21, 4);
  spans.record(7, SpanStage::kApply, 300, 20, 4, /*duration=*/42);
  spans.record(7, SpanStage::kReply, 400, 1, obs::kSpanNoStream);

  const auto total = [&](const char* key) {
    const obs::Timer* t = metrics.find_timer(key);
    return t != nullptr ? t->total() : Histogram{};
  };
  EXPECT_EQ(total("span.propose_wait").count(), 1u);
  EXPECT_EQ(total("span.propose_wait").max(), 30u);
  EXPECT_EQ(total("span.quorum_wait").max(), 60u);
  // merge.skew_wait pairs learn -> deliver on the SAME node: 300-220 and
  // 330-230.
  EXPECT_EQ(total("merge.skew_wait").count(), 2u);
  EXPECT_EQ(total("merge.skew_wait").max(), 100u);
  // e2e is recorded once, at the first delivery only.
  EXPECT_EQ(total("span.e2e").count(), 1u);
  EXPECT_EQ(total("span.e2e").max(), 200u);
  EXPECT_EQ(total("span.apply").max(), 42u);
  EXPECT_EQ(total("span.client_rtt").max(), 300u);
  // Per-stream flavour exists alongside the aggregate.
  EXPECT_EQ(total("merge.skew_wait{stream=4}").count(), 2u);
}

TEST(SpanCollectorTest, EvictionKeepsSampledSpansAndCountsDrops) {
  SpanCollector spans;
  spans.set_enabled(true);
  spans.set_sample_every(2);             // even ids are export-sampled
  spans.set_capacity(/*max_live=*/4, /*max_retired=*/1);
  for (uint64_t id = 1; id <= 12; ++id) {
    spans.record(id, SpanStage::kClientSend, static_cast<Tick>(id), 1, 1);
  }
  EXPECT_LE(spans.live().size(), 4u);
  // 8 spans were evicted; 4 of them sampled, 1 retained, 3 dropped.
  EXPECT_EQ(spans.dropped_spans(), 3u);
}

// --- Chrome trace export -------------------------------------------------

// The exporter emits one JSON object per line; pull one string / number
// field out of a line without a JSON parser.
std::string json_str_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  return line.substr(start, line.find('"', start) - start);
}

double json_num_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    lines.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// Structural validation mirroring tools/epx-trace/validate.py: async
/// begin/end balance and stage-in-parent containment.
void validate_chrome_trace(const std::string& json, size_t* spans_out,
                           size_t* stages_out) {
  std::map<std::string, double> open;                       // id -> begin ts
  std::map<std::string, std::pair<double, double>> closed;  // id -> [b, e]
  std::vector<std::string> stage_lines;
  for (const std::string& line : split_lines(json)) {
    const std::string ph = json_str_field(line, "ph");
    if (ph == "b") {
      const std::string id = json_str_field(line, "id");
      EXPECT_EQ(open.count(id) + closed.count(id), 0u) << "duplicate begin " << id;
      open[id] = json_num_field(line, "ts");
    } else if (ph == "e") {
      const std::string id = json_str_field(line, "id");
      ASSERT_EQ(open.count(id), 1u) << "end without begin " << id;
      const double begin = open[id];
      const double end = json_num_field(line, "ts");
      EXPECT_GE(end, begin) << id;
      closed[id] = {begin, end};
      open.erase(id);
    } else if (ph == "X") {
      EXPECT_GE(json_num_field(line, "dur"), 0.0) << line;
      stage_lines.push_back(line);
    }
  }
  EXPECT_TRUE(open.empty()) << open.size() << " spans never ended";
  size_t contained = 0;
  for (const std::string& line : stage_lines) {
    const std::string parent = json_str_field(line, "trace");
    auto it = closed.find(parent);
    if (it == closed.end()) continue;  // parent span not exported (< 2 events)
    const double ts = json_num_field(line, "ts");
    const double dur = json_num_field(line, "dur");
    EXPECT_GE(ts + 1e-6, it->second.first) << line;
    EXPECT_LE(ts + dur, it->second.second + 1e-6) << line;
    ++contained;
  }
  if (spans_out != nullptr) *spans_out = closed.size();
  if (stages_out != nullptr) *stages_out = contained;
}

TEST(SpanExportTest, SyntheticSpanRoundTrips) {
  SpanCollector spans;
  spans.set_enabled(true);
  spans.record(0x70, SpanStage::kClientSend, 1000, 1, 4);
  spans.record(0x70, SpanStage::kPropose, 2000, 10, 4);
  spans.record(0x70, SpanStage::kDecide, 3000, 11, 4);
  spans.record(0x70, SpanStage::kLearn, 4000, 20, 4);
  spans.record(0x70, SpanStage::kDeliver, 6000, 20, 4);
  spans.record(0x70, SpanStage::kApply, 6000, 20, 4, /*duration=*/500);
  // An apply interval stretching past the reply must still be contained.
  spans.record(0x70, SpanStage::kReply, 6200, 1, obs::kSpanNoStream);

  obs::Trace ring(16);
  ring.record(5000, obs::TraceKind::kMergePoint, 20, 4, 12);
  const std::string json = spans.chrome_trace_json(&ring);

  size_t span_count = 0;
  size_t stage_count = 0;
  validate_chrome_trace(json, &span_count, &stage_count);
  EXPECT_EQ(span_count, 1u);
  // propose_wait, quorum_wait, learn_wait, merge_skew_wait, apply.
  EXPECT_EQ(stage_count, 5u);
  EXPECT_NE(json.find("\"0x70\""), std::string::npos);
  EXPECT_NE(json.find("merge_skew_wait"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"ring\""), std::string::npos);
  EXPECT_NE(json.find("merge-point"), std::string::npos);
}

TEST(SpanExportTest, WritesFile) {
  SpanCollector spans;
  spans.set_enabled(true);
  spans.record(2, SpanStage::kClientSend, 10, 1, 1);
  spans.record(2, SpanStage::kDeliver, 30, 5, 1);
  const std::string path = testing::TempDir() + "span_export_test.json";
  EXPECT_GT(spans.export_chrome_trace(path), 0u);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

// --- end-to-end traced cluster -------------------------------------------

TEST(SpanEndToEndTest, TracedClusterProducesCompleteSpans) {
  harness::Cluster cluster;
  cluster.sim().spans().set_enabled(true);
  cluster.sim().spans().set_sample_every(1);
  cluster.sim().monitors().set_enabled(true);

  // Two streams feeding one group: the round-robin merge makes the
  // dMerge hold (merge.skew_wait) strictly positive for most commands.
  const paxos::StreamId s1 = cluster.add_stream();
  const paxos::StreamId s2 = cluster.add_stream();
  cluster.add_replica(/*group=*/1, {s1, s2});
  cluster.add_replica(/*group=*/1, {s1, s2});
  for (paxos::StreamId s : {s1, s2}) {
    harness::LoadClient::Config cfg;
    cfg.threads = 2;
    cfg.payload_bytes = 512;
    cfg.route = [s] { return s; };
    cluster
        .spawn<harness::LoadClient>("client_s" + std::to_string(s),
                                    &cluster.directory(), cfg)
        ->start();
  }
  cluster.run_until(3 * kSecond);

  const obs::MetricsRegistry& metrics = cluster.sim().metrics();
  const auto count = [&](const char* key) {
    const obs::Timer* t = metrics.find_timer(key);
    return t != nullptr ? t->total().count() : 0u;
  };
  EXPECT_GT(count("span.propose_wait"), 0u);
  EXPECT_GT(count("span.quorum_wait"), 0u);
  EXPECT_GT(count("span.learn_wait"), 0u);
  EXPECT_GT(count("span.e2e"), 0u);
  EXPECT_GT(count("span.client_rtt"), 0u);
  const obs::Timer* skew = metrics.find_timer("merge.skew_wait");
  ASSERT_NE(skew, nullptr);
  EXPECT_GT(skew->total().count(), 0u);
  EXPECT_GT(skew->total().max(), 0u) << "two-stream round-robin must hold "
                                        "commands while the sibling catches up";
  // Per-stream flavours exist for both streams.
  EXPECT_GT(count(("merge.skew_wait{stream=" + std::to_string(s1) + "}").c_str()),
            0u);
  EXPECT_GT(count(("merge.skew_wait{stream=" + std::to_string(s2) + "}").c_str()),
            0u);

  // The exported trace is structurally valid with nested stages.
  size_t span_count = 0;
  size_t stage_count = 0;
  validate_chrome_trace(cluster.sim().spans().chrome_trace_json(), &span_count,
                        &stage_count);
  EXPECT_GT(span_count, 10u);
  EXPECT_GT(stage_count, span_count) << "several stage intervals per span";

  // The invariant monitors watched the whole run and stayed silent.
  EXPECT_EQ(cluster.sim().monitors().violation_count(), 0u)
      << cluster.sim().monitors().summary();

  // The stage table renders the span metrics by name (harness S2 path).
  const std::string table = harness::render_stage_table(
      metrics, "stages", harness::default_stage_rows());
  EXPECT_NE(table.find("merge-skew-wait"), std::string::npos);
  EXPECT_NE(table.find("end-to-end"), std::string::npos);
}

TEST(SpanEndToEndTest, UntracedClusterRecordsNothing) {
  harness::Cluster cluster;
  const paxos::StreamId s1 = cluster.add_stream();
  cluster.add_replica(/*group=*/1, {s1});
  harness::LoadClient::Config cfg;
  cfg.threads = 1;
  cfg.payload_bytes = 256;
  cfg.route = [s1] { return s1; };
  cluster.spawn<harness::LoadClient>("client", &cluster.directory(), cfg)->start();
  cluster.run_until(1 * kSecond);
  EXPECT_EQ(cluster.sim().spans().recorded_events(), 0u);
  EXPECT_EQ(cluster.sim().metrics().find_timer("span.e2e"), nullptr);
}

}  // namespace
}  // namespace epx
