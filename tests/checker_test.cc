// Self-tests for the correctness oracles: they must accept legal
// histories and flag each class of violation (otherwise green runs mean
// nothing).
#include <gtest/gtest.h>

#include "checker/linearizability.h"
#include "checker/order_checker.h"

namespace epx {
namespace {

using checker::KvOp;
using checker::LinearizabilityChecker;
using checker::OrderChecker;

// ------------------------------------------------------- OrderChecker --

TEST(OrderCheckerTest, AcceptsIdenticalSequences) {
  OrderChecker c;
  for (uint32_t r : {1u, 2u}) {
    for (uint64_t m : {10u, 20u, 30u}) c.record(r, m);
  }
  EXPECT_EQ(c.check_all(), "");
  EXPECT_EQ(c.check_group_agreement({1, 2}), "");
}

TEST(OrderCheckerTest, AcceptsDisjointDeliveries) {
  OrderChecker c;
  c.record(1, 10);
  c.record(2, 20);
  EXPECT_EQ(c.check_pairwise_order(), "");
}

TEST(OrderCheckerTest, AcceptsInterleavedSubsets) {
  // r2 delivers a subsequence of r1 — consistent order.
  OrderChecker c;
  for (uint64_t m : {1u, 2u, 3u, 4u, 5u}) c.record(1, m);
  for (uint64_t m : {2u, 4u}) c.record(2, m);
  EXPECT_EQ(c.check_pairwise_order(), "");
}

TEST(OrderCheckerTest, DetectsPairwiseInversion) {
  OrderChecker c;
  c.record(1, 10);
  c.record(1, 20);
  c.record(2, 20);
  c.record(2, 10);
  EXPECT_NE(c.check_pairwise_order(), "");
}

TEST(OrderCheckerTest, DetectsDuplicateDelivery) {
  OrderChecker c;
  c.record(1, 10);
  c.record(1, 10);
  EXPECT_NE(c.check_integrity(), "");
}

TEST(OrderCheckerTest, DetectsGroupDivergence) {
  OrderChecker c;
  c.record(1, 10);
  c.record(1, 20);
  c.record(2, 20);
  c.record(2, 10);
  EXPECT_NE(c.check_group_agreement({1, 2}), "");
}

TEST(OrderCheckerTest, GroupPrefixAllowedWhenRequested) {
  OrderChecker c;
  c.record(1, 10);
  c.record(1, 20);
  c.record(2, 10);
  EXPECT_NE(c.check_group_agreement({1, 2}, /*allow_prefix=*/false), "");
  EXPECT_EQ(c.check_group_agreement({1, 2}, /*allow_prefix=*/true), "");
}

// --------------------------------------------- LinearizabilityChecker --

KvOp put(const std::string& key, const std::string& value, Tick invoke, Tick response) {
  return {KvOp::Kind::kPut, key, value, invoke, response};
}
KvOp get(const std::string& key, const std::string& value, Tick invoke, Tick response) {
  return {KvOp::Kind::kGet, key, value, invoke, response};
}

TEST(LinearizabilityTest, AcceptsSequentialHistory) {
  LinearizabilityChecker c;
  c.add(put("k", "v1", 0, 10));
  c.add(get("k", "v1", 20, 30));
  c.add(put("k", "v2", 40, 50));
  c.add(get("k", "v2", 60, 70));
  EXPECT_EQ(c.check(), "");
}

TEST(LinearizabilityTest, AcceptsConcurrentReadOfEitherValue) {
  LinearizabilityChecker c;
  c.add(put("k", "v1", 0, 10));
  c.add(put("k", "v2", 15, 40));       // concurrent with the get
  c.add(get("k", "v1", 20, 30));       // may still see v1
  EXPECT_EQ(c.check(), "");
  LinearizabilityChecker c2;
  c2.add(put("k", "v1", 0, 10));
  c2.add(put("k", "v2", 15, 40));
  c2.add(get("k", "v2", 20, 30));      // or already v2
  EXPECT_EQ(c2.check(), "");
}

TEST(LinearizabilityTest, DetectsStaleRead) {
  LinearizabilityChecker c;
  c.add(put("k", "v1", 0, 10));
  c.add(put("k", "v2", 20, 30));  // fully between v1's write and the get
  c.add(get("k", "v1", 40, 50));
  EXPECT_NE(c.check(), "");
}

TEST(LinearizabilityTest, DetectsFutureRead) {
  LinearizabilityChecker c;
  c.add(get("k", "v1", 0, 10));
  c.add(put("k", "v1", 20, 30));  // started after the get finished
  EXPECT_NE(c.check(), "");
}

TEST(LinearizabilityTest, DetectsPhantomValue) {
  LinearizabilityChecker c;
  c.add(get("k", "never-written", 0, 10));
  EXPECT_NE(c.check(), "");
}

TEST(LinearizabilityTest, EmptyReadBeforeAnyWriteIsFine) {
  LinearizabilityChecker c;
  c.add(get("k", "", 0, 10));
  c.add(put("k", "v1", 20, 30));
  EXPECT_EQ(c.check(), "");
}

TEST(LinearizabilityTest, EmptyReadAfterCompletedWriteIsViolation) {
  LinearizabilityChecker c;
  c.add(put("k", "v1", 0, 10));
  c.add(get("k", "", 20, 30));
  EXPECT_NE(c.check(), "");
}

TEST(LinearizabilityTest, KeysAreIndependent) {
  LinearizabilityChecker c;
  c.add(put("a", "v1", 0, 10));
  c.add(put("b", "v2", 0, 10));
  c.add(get("a", "v1", 20, 30));
  c.add(get("b", "v2", 20, 30));
  EXPECT_EQ(c.check(), "");
}

}  // namespace
}  // namespace epx
