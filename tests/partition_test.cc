// Network-partition and quorum-loss tests: safety under asynchrony
// (nothing diverges while a quorum is unreachable; progress resumes on
// heal), exercising the paper's §II system model.
#include <gtest/gtest.h>

#include <unordered_set>

#include "checker/order_checker.h"
#include "tests/test_util.h"

namespace epx {
namespace {

using harness::Cluster;
using harness::LoadClient;

class PartitionTest : public ::testing::Test {
 protected:
  void SetUp() override { testing::init_logging(); }
};

TEST_F(PartitionTest, QuorumLossHaltsButNeverDiverges) {
  Cluster cluster;
  const auto s1 = cluster.add_stream();
  auto* r1 = cluster.add_replica(1, {s1});
  auto* r2 = cluster.add_replica(1, {s1});

  checker::OrderChecker order;
  for (auto* r : {r1, r2}) {
    r->set_delivery_listener([&order](net::NodeId n, const paxos::Command& c,
                                      paxos::StreamId) { order.record(n, c.id); });
  }

  LoadClient::Config cfg;
  cfg.threads = 4;
  cfg.payload_bytes = 256;
  cfg.retry_timeout = 500 * kMillisecond;
  cfg.route = [s1] { return s1; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  cluster.run_for(2 * kSecond);
  const uint64_t before = client->completed();
  EXPECT_GT(before, 0u);

  // Isolate two of the three acceptors: no quorum can form.
  const auto accs = cluster.acceptors(s1);
  cluster.net().partition({accs[1]->id(), accs[2]->id()});
  cluster.run_for(3 * kSecond);
  const uint64_t during = client->completed();
  EXPECT_LE(during - before, 10u) << "no quorum -> (almost) no progress";

  cluster.net().heal();
  cluster.run_for(5 * kSecond);
  client->stop();
  cluster.run_for(2 * kSecond);

  EXPECT_GT(client->completed(), during + 100) << "progress resumes after heal";
  EXPECT_EQ(order.check_all(), "") << "asynchrony must never break safety";
  EXPECT_EQ(order.sequence(r1->id()), order.sequence(r2->id()));
}

TEST_F(PartitionTest, IsolatedReplicaCatchesUpAfterHeal) {
  Cluster cluster;
  const auto s1 = cluster.add_stream();
  auto* r1 = cluster.add_replica(1, {s1});
  auto* r2 = cluster.add_replica(1, {s1});

  checker::OrderChecker order;
  for (auto* r : {r1, r2}) {
    r->set_delivery_listener([&order](net::NodeId n, const paxos::Command& c,
                                      paxos::StreamId) { order.record(n, c.id); });
  }

  LoadClient::Config cfg;
  cfg.threads = 4;
  cfg.payload_bytes = 256;
  cfg.route = [s1] { return s1; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  cluster.run_for(2 * kSecond);

  // Cut replica 2 off; the rest of the system keeps running.
  cluster.net().partition({r2->id()});
  cluster.run_for(3 * kSecond);
  EXPECT_GT(r1->delivered(), r2->delivered() + 100);

  cluster.net().heal();
  cluster.run_for(3 * kSecond);
  client->stop();
  cluster.run_for(3 * kSecond);

  // Learner gap-repair pulls the isolated replica back level.
  EXPECT_NEAR(static_cast<double>(r2->delivered()), static_cast<double>(r1->delivered()),
              5.0);
  EXPECT_EQ(order.check_all(), "");
  EXPECT_EQ(order.check_group_agreement({r1->id(), r2->id()}, /*allow_prefix=*/true), "");
}

TEST_F(PartitionTest, SubscriptionStallsAcrossPartitionAndRecovers) {
  // Partition the NEW stream's acceptors during a subscription: the scan
  // cannot find the twin request until the partition heals.
  Cluster cluster;
  const auto s1 = cluster.add_stream();
  const auto s2 = cluster.add_stream();
  auto* r1 = cluster.add_replica(1, {s1});

  LoadClient::Config cfg;
  cfg.threads = 2;
  cfg.payload_bytes = 256;
  cfg.route = [s1] { return s1; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  cluster.run_for(1 * kSecond);

  // Isolate stream 2 entirely (coordinator + acceptors).
  std::unordered_set<net::NodeId> island;
  island.insert(cluster.directory().get(s2).coordinator);
  for (auto* a : cluster.acceptors(s2)) island.insert(a->id());
  cluster.net().partition(island);

  cluster.controller().subscribe(1, s2, s1);
  cluster.run_for(3 * kSecond);
  EXPECT_FALSE(r1->merger().subscribed_to(s2)) << "unreachable stream cannot merge";
  EXPECT_NE(r1->merger().phase(), elastic::ElasticMerger::Phase::kNormal);

  cluster.net().heal();
  const Tick deadline = cluster.now() + 20 * kSecond;
  while (cluster.now() < deadline && !r1->merger().subscribed_to(s2)) {
    cluster.run_for(200 * kMillisecond);
  }
  EXPECT_TRUE(r1->merger().subscribed_to(s2)) << "subscription completes after heal";
  client->stop();
}

}  // namespace
}  // namespace epx
