// Unit tests of the Paxos roles: acceptor promise/accept/decide logic on
// the ring, log trimming, learner catch-up and gap repair, the stream
// queue's slot accounting, and single-instance safety properties.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "multicast/stream_queue.h"
#include "paxos/acceptor.h"
#include "paxos/learner.h"
#include "sim/process.h"
#include "tests/test_util.h"

namespace epx {
namespace {

using net::MessagePtr;
using net::NodeId;
using paxos::AcceptMsg;
using paxos::Acceptor;
using paxos::Ballot;
using paxos::Command;
using paxos::DecisionMsg;
using paxos::Phase1aMsg;
using paxos::Phase1bMsg;
using paxos::Proposal;
using paxos::RecoverReplyMsg;

// Captures every message sent to it, keyed by type.
class CaptureProcess : public sim::Process {
 public:
  CaptureProcess(sim::Simulation* sim, sim::Network* net, NodeId id)
      : Process(sim, net, id, "capture" + std::to_string(id)) {}

  std::vector<MessagePtr> messages;

  template <typename T>
  std::vector<const T*> of_type(net::MsgType type) const {
    std::vector<const T*> out;
    for (const auto& m : messages) {
      if (m->type() == type) out.push_back(static_cast<const T*>(m.get()));
    }
    return out;
  }

 protected:
  void on_message(NodeId, const MessagePtr& msg) override { messages.push_back(msg); }
};

Proposal make_value(uint64_t id, paxos::SlotIndex first_slot = 0) {
  Proposal p;
  p.first_slot = first_slot;
  Command c;
  c.id = id;
  c.payload_size = 16;
  p.commands.push_back(std::move(c));
  return p;
}

class AcceptorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    testing::init_logging();
    net.set_default_link({0, 0});
    Acceptor::Config cfg;
    cfg.stream = 1;
    acc = std::make_unique<Acceptor>(&sim, &net, 10, "acc", cfg);
    acc->set_quorum(2);
    sender = std::make_unique<CaptureProcess>(&sim, &net, 20);
    learner = std::make_unique<CaptureProcess>(&sim, &net, 30);
  }

  void join_learner() {
    net.send(sender->id(), acc->id(),
             net::make_message<paxos::LearnerJoinMsg>(1, learner->id()), 0);
    sim.run_to_completion();
  }

  MessagePtr accept_msg(Ballot b, paxos::InstanceId inst, Proposal v, uint32_t count) {
    auto m = std::make_shared<AcceptMsg>();
    m->stream = 1;
    m->ballot = b;
    m->instance = inst;
    m->value = paxos::make_proposal(std::move(v));
    m->accept_count = count;
    return m;
  }

  sim::Simulation sim;
  sim::Network net{&sim, 1};
  std::unique_ptr<Acceptor> acc;
  std::unique_ptr<CaptureProcess> sender;
  std::unique_ptr<CaptureProcess> learner;
};

TEST_F(AcceptorTest, PromisesHigherBallot) {
  net.send(sender->id(), acc->id(), net::make_message<Phase1aMsg>(1, Ballot{5, 2}, 0), 0);
  sim.run_to_completion();
  auto replies = sender->of_type<Phase1bMsg>(net::MsgType::kPhase1b);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0]->ok);
  EXPECT_EQ(replies[0]->promised, (Ballot{5, 2}));
  EXPECT_EQ(acc->promised(), (Ballot{5, 2}));
}

TEST_F(AcceptorTest, RejectsLowerBallotPhase1) {
  net.send(sender->id(), acc->id(), net::make_message<Phase1aMsg>(1, Ballot{5, 2}, 0), 0);
  net.send(sender->id(), acc->id(), net::make_message<Phase1aMsg>(1, Ballot{3, 1}, 0), 0);
  sim.run_to_completion();
  auto replies = sender->of_type<Phase1bMsg>(net::MsgType::kPhase1b);
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_FALSE(replies[1]->ok);
  EXPECT_EQ(replies[1]->promised, (Ballot{5, 2}));  // tells the caller who won
}

TEST_F(AcceptorTest, Phase1bReportsAcceptedValues) {
  net.send(sender->id(), acc->id(), accept_msg({1, 2}, 7, make_value(42), 0), 0);
  sim.run_to_completion();
  net.send(sender->id(), acc->id(), net::make_message<Phase1aMsg>(1, Ballot{9, 3}, 0), 0);
  sim.run_to_completion();
  auto replies = sender->of_type<Phase1bMsg>(net::MsgType::kPhase1b);
  ASSERT_EQ(replies.size(), 1u);
  ASSERT_EQ(replies[0]->accepted.size(), 1u);
  EXPECT_EQ(replies[0]->accepted[0].instance, 7u);
  EXPECT_EQ(replies[0]->accepted[0].value->commands[0].id, 42u);
}

TEST_F(AcceptorTest, QuorumVoteEmitsDecisionToLearners) {
  join_learner();
  // accept_count=1 means one earlier acceptor voted; ours completes the
  // quorum of 2.
  net.send(sender->id(), acc->id(), accept_msg({1, 2}, 0, make_value(42), 1), 0);
  sim.run_to_completion();
  auto decisions = learner->of_type<DecisionMsg>(net::MsgType::kDecision);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_EQ(decisions[0]->instance, 0u);
  EXPECT_EQ(decisions[0]->value->commands[0].id, 42u);
  EXPECT_TRUE(acc->has_decided(0));
}

TEST_F(AcceptorTest, FirstVoteDoesNotDecide) {
  join_learner();
  net.send(sender->id(), acc->id(), accept_msg({1, 2}, 0, make_value(42), 0), 0);
  sim.run_to_completion();
  EXPECT_TRUE(learner->of_type<DecisionMsg>(net::MsgType::kDecision).empty());
  EXPECT_FALSE(acc->has_decided(0));
}

TEST_F(AcceptorTest, StaleBallotAcceptIgnored) {
  net.send(sender->id(), acc->id(), net::make_message<Phase1aMsg>(1, Ballot{9, 3}, 0), 0);
  sim.run_to_completion();
  net.send(sender->id(), acc->id(), accept_msg({1, 2}, 0, make_value(42), 1), 0);
  sim.run_to_completion();
  EXPECT_FALSE(acc->has_decided(0));
  EXPECT_EQ(acc->log_size(), 0u);
}

TEST_F(AcceptorTest, ForwardsAlongRing) {
  auto successor = std::make_unique<CaptureProcess>(&sim, &net, 40);
  acc->set_ring_successor(successor->id());
  net.send(sender->id(), acc->id(), accept_msg({1, 2}, 0, make_value(42), 0), 0);
  sim.run_to_completion();
  auto forwarded = successor->of_type<AcceptMsg>(net::MsgType::kAccept);
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0]->accept_count, 1u);  // our vote added
}

TEST_F(AcceptorTest, CoordinatorGetsSummaryDecision) {
  // The ballot leader (node 20 = sender) registered as learner receives
  // a payload-free summary with identical slot accounting.
  net.send(sender->id(), acc->id(),
           net::make_message<paxos::LearnerJoinMsg>(1, sender->id()), 0);
  sim.run_to_completion();
  net.send(sender->id(), acc->id(),
           accept_msg({1, sender->id()}, 0, make_value(42, /*first_slot=*/10), 1), 0);
  sim.run_to_completion();
  auto decisions = sender->of_type<DecisionMsg>(net::MsgType::kDecision);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_TRUE(decisions[0]->value->commands.empty());
  EXPECT_EQ(decisions[0]->value->first_slot, 10u);
  EXPECT_EQ(decisions[0]->value->slot_count(), 1u);
}

TEST_F(AcceptorTest, TrimDiscardsPrefix) {
  join_learner();
  for (paxos::InstanceId i = 0; i < 10; ++i) {
    net.send(sender->id(), acc->id(), accept_msg({1, 2}, i, make_value(i, i), 1), 0);
  }
  sim.run_to_completion();
  EXPECT_EQ(acc->log_size(), 10u);
  net.send(sender->id(), acc->id(), net::make_message<paxos::TrimRequestMsg>(1, 6), 0);
  sim.run_to_completion();
  EXPECT_EQ(acc->log_size(), 4u);
  EXPECT_EQ(acc->trim_horizon(), 6u);
  EXPECT_FALSE(acc->has_decided(3));
  EXPECT_TRUE(acc->has_decided(7));
}

TEST_F(AcceptorTest, RecoverReturnsDecidedPrefixAndHorizon) {
  join_learner();
  for (paxos::InstanceId i = 0; i < 5; ++i) {
    net.send(sender->id(), acc->id(), accept_msg({1, 2}, i, make_value(i, i), 1), 0);
  }
  sim.run_to_completion();
  net.send(sender->id(), acc->id(), net::make_message<paxos::RecoverRequestMsg>(1, 0, 100),
           0);
  sim.run_to_completion();
  auto replies = sender->of_type<RecoverReplyMsg>(net::MsgType::kRecoverReply);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0]->entries.size(), 5u);
  EXPECT_EQ(replies[0]->decided_watermark, 5u);
  EXPECT_EQ(replies[0]->trim_horizon, 0u);
}

TEST_F(AcceptorTest, RecoverChunksLargeRanges) {
  join_learner();
  const size_t chunk = Acceptor::Config{}.params.recover_chunk;
  for (paxos::InstanceId i = 0; i < chunk + 50; ++i) {
    net.send(sender->id(), acc->id(), accept_msg({1, 2}, i, make_value(i, i), 1), 0);
  }
  sim.run_to_completion();
  net.send(sender->id(), acc->id(),
           net::make_message<paxos::RecoverRequestMsg>(1, 0, chunk + 50), 0);
  sim.run_to_completion();
  auto replies = sender->of_type<RecoverReplyMsg>(net::MsgType::kRecoverReply);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0]->entries.size(), chunk);
}

TEST_F(AcceptorTest, DurableStorageReplaysJournalOnRestart) {
  Acceptor::Config cfg;
  cfg.stream = 2;
  cfg.storage = paxos::StoragePolicy::kDurable;
  Acceptor durable_acc(&sim, &net, 50, "durable", cfg);
  durable_acc.set_quorum(2);
  net.send(sender->id(), durable_acc.id(), accept_msg({1, 2}, 0, make_value(42), 1), 0);
  sim.run_to_completion();  // drains the journal flush
  EXPECT_TRUE(durable_acc.has_decided(0));
  ASSERT_NE(durable_acc.wal_store(), nullptr);
  EXPECT_GT(durable_acc.wal_store()->journal_records(), 0u);
  durable_acc.crash();
  EXPECT_FALSE(durable_acc.has_decided(0));  // volatile state is gone
  durable_acc.restart();                     // ... until replay rebuilds it
  EXPECT_TRUE(durable_acc.has_decided(0));
  EXPECT_EQ(durable_acc.promised(), (Ballot{1, 2}));
}

TEST_F(AcceptorTest, DisklessStorageLosesStateOnCrash) {
  // kDiskless is the default policy: nothing survives a crash.
  EXPECT_EQ(acc->storage_policy(), paxos::StoragePolicy::kDiskless);
  net.send(sender->id(), acc->id(), accept_msg({1, 2}, 0, make_value(42), 1), 0);
  sim.run_to_completion();
  EXPECT_TRUE(acc->has_decided(0));
  acc->crash();
  acc->restart();
  EXPECT_FALSE(acc->has_decided(0));
  EXPECT_EQ(acc->promised(), Ballot{});
}

TEST_F(AcceptorTest, PowerLossBeforeFlushLosesTheTail) {
  Acceptor::Config cfg;
  cfg.stream = 2;
  cfg.storage = paxos::StoragePolicy::kDurable;
  cfg.device.fsync_latency = 10 * kMillisecond;  // slow disk: flush in flight
  Acceptor durable_acc(&sim, &net, 51, "durable2", cfg);
  durable_acc.set_quorum(2);
  net.send(sender->id(), durable_acc.id(), accept_msg({1, 2}, 0, make_value(42), 1), 0);
  sim.run_until(1 * kMillisecond);  // accept processed, fsync still pending
  EXPECT_TRUE(durable_acc.has_decided(0));
  ASSERT_NE(durable_acc.wal_store(), nullptr);
  EXPECT_GT(durable_acc.wal_store()->pending_records(), 0u);
  durable_acc.crash();
  durable_acc.restart();
  // The un-flushed record died with the power; no decision survives, and
  // no Decision/forward ever left the node for it.
  EXPECT_FALSE(durable_acc.has_decided(0));
  sim.run_to_completion();
  EXPECT_TRUE(learner->of_type<DecisionMsg>(net::MsgType::kDecision).empty());
}

TEST_F(AcceptorTest, CrashClearsLearnerRegistrations) {
  join_learner();
  EXPECT_EQ(acc->learner_count(), 1u);
  acc->crash();
  acc->restart();
  EXPECT_EQ(acc->learner_count(), 0u);
}

// ---------------------------------------------------------- Learner --

class LearnerHost : public sim::Process {
 public:
  LearnerHost(sim::Simulation* sim, sim::Network* net, NodeId id)
      : Process(sim, net, id, "lhost") {}

  std::unique_ptr<paxos::Learner> learner;
  std::vector<std::pair<paxos::InstanceId, uint64_t>> delivered;  // (instance, cmd id)

  void init(std::vector<NodeId> acceptors) {
    paxos::Learner::Config cfg;
    cfg.stream = 1;
    cfg.acceptors = std::move(acceptors);
    learner = std::make_unique<paxos::Learner>(
        this, cfg, [this](const paxos::ProposalPtr& value, paxos::InstanceId instance) {
          delivered.emplace_back(instance,
                                 value->commands.empty() ? 0 : value->commands[0].id);
        });
  }

 protected:
  void on_message(NodeId, const MessagePtr& msg) override {
    if (msg->type() == net::MsgType::kDecision) {
      learner->on_decision(static_cast<const DecisionMsg&>(*msg));
    } else if (msg->type() == net::MsgType::kRecoverReply) {
      learner->on_recover_reply(static_cast<const RecoverReplyMsg&>(*msg));
    }
  }
};

TEST_F(AcceptorTest, LearnerCatchesUpFromAcceptorLog) {
  join_learner();
  for (paxos::InstanceId i = 0; i < 20; ++i) {
    net.send(sender->id(), acc->id(), accept_msg({1, 2}, i, make_value(100 + i, i), 1), 0);
  }
  sim.run_to_completion();

  LearnerHost host(&sim, &net, 60);
  host.init({acc->id()});
  host.learner->start(0);
  sim.run_until(sim.now() + kSecond);
  ASSERT_EQ(host.delivered.size(), 20u);
  for (paxos::InstanceId i = 0; i < 20; ++i) {
    EXPECT_EQ(host.delivered[i].first, i);
    EXPECT_EQ(host.delivered[i].second, 100 + i);
  }
  EXPECT_TRUE(host.learner->caught_up());
}

TEST_F(AcceptorTest, LearnerJumpsTrimHorizon) {
  join_learner();
  for (paxos::InstanceId i = 0; i < 10; ++i) {
    net.send(sender->id(), acc->id(), accept_msg({1, 2}, i, make_value(100 + i, i), 1), 0);
  }
  sim.run_to_completion();
  net.send(sender->id(), acc->id(), net::make_message<paxos::TrimRequestMsg>(1, 5), 0);
  sim.run_to_completion();

  LearnerHost host(&sim, &net, 61);
  host.init({acc->id()});
  host.learner->start(0);
  sim.run_until(sim.now() + kSecond);
  ASSERT_EQ(host.delivered.size(), 5u);
  EXPECT_EQ(host.delivered[0].first, 5u);  // jumped to the horizon
}

TEST_F(AcceptorTest, LearnerRepairsGapFromAcceptor) {
  LearnerHost host(&sim, &net, 62);
  host.init({acc->id()});
  host.learner->start(0);
  sim.run_until(sim.now() + 200 * kMillisecond);

  // Feed decisions 0 and 2 directly — 1 is missing.
  auto d0 = std::make_shared<DecisionMsg>(1, 0, make_value(100, 0));
  auto d2 = std::make_shared<DecisionMsg>(1, 2, make_value(102, 2));
  net.send(sender->id(), host.id(), d0, 0);
  net.send(sender->id(), host.id(), d2, 0);
  // The acceptor has everything (it decided all three).
  for (paxos::InstanceId i = 0; i < 3; ++i) {
    net.send(sender->id(), acc->id(), accept_msg({1, 2}, i, make_value(100 + i, i), 1), 0);
  }
  sim.run_until(sim.now() + kSecond);
  ASSERT_EQ(host.delivered.size(), 3u);
  EXPECT_EQ(host.delivered[1].second, 101u);  // gap repaired in order
}

// Regression: a RecoverReply issued before the delivery frontier moved
// must not re-deliver (or retain) entries the learner already handed to
// its sink.
TEST_F(AcceptorTest, LearnerIgnoresStaleRecoverReplyAfterDelivery) {
  LearnerHost host(&sim, &net, 63);
  host.init({acc->id()});
  host.learner->start(0);
  sim.run_until(sim.now() + 200 * kMillisecond);

  for (paxos::InstanceId i = 0; i < 5; ++i) {
    net.send(sender->id(), host.id(),
             std::make_shared<DecisionMsg>(1, i, make_value(100 + i, i)), 0);
  }
  sim.run_until(sim.now() + 100 * kMillisecond);
  ASSERT_EQ(host.delivered.size(), 5u);
  ASSERT_EQ(host.learner->next_instance(), 5u);

  // The stale reply replays everything already delivered.
  auto stale = std::make_shared<RecoverReplyMsg>();
  stale->stream = 1;
  stale->trim_horizon = 0;
  stale->decided_watermark = 5;
  for (paxos::InstanceId i = 0; i < 5; ++i) {
    stale->entries.emplace_back(i, paxos::make_proposal(make_value(100 + i, i)));
  }
  net.send(sender->id(), host.id(), stale, 0);
  sim.run_until(sim.now() + 100 * kMillisecond);

  EXPECT_EQ(host.delivered.size(), 5u);  // nothing delivered twice
  EXPECT_EQ(host.learner->next_instance(), 5u);
}

// Regression: a trim-horizon jump must drop decisions buffered below the
// new frontier — they were superseded by the trim and would otherwise be
// retained forever (and confuse gap detection).
TEST_F(AcceptorTest, LearnerDropsPendingBelowTrimJump) {
  LearnerHost host(&sim, &net, 64);
  host.init({acc->id()});
  host.learner->start(0);
  sim.run_until(sim.now() + 200 * kMillisecond);

  // Instance 3 arrives out of order and stays pending (hole at 0..2).
  net.send(sender->id(), host.id(),
           std::make_shared<DecisionMsg>(1, 3, make_value(103, 3)), 0);
  sim.run_until(sim.now() + 50 * kMillisecond);
  ASSERT_TRUE(host.delivered.empty());

  // The acceptors trimmed to 5: recovery jumps the frontier past the
  // buffered instance.
  auto reply = std::make_shared<RecoverReplyMsg>();
  reply->stream = 1;
  reply->trim_horizon = 5;
  reply->decided_watermark = 5;
  net.send(sender->id(), host.id(), reply, 0);
  sim.run_until(sim.now() + 50 * kMillisecond);
  EXPECT_EQ(host.learner->next_instance(), 5u);

  // Live decisions resume at 5; the superseded instance 3 never surfaces.
  net.send(sender->id(), host.id(),
           std::make_shared<DecisionMsg>(1, 5, make_value(105, 5)), 0);
  sim.run_until(sim.now() + 50 * kMillisecond);
  ASSERT_EQ(host.delivered.size(), 1u);
  EXPECT_EQ(host.delivered[0].first, 5u);
  EXPECT_EQ(host.delivered[0].second, 105u);
}

// Regression: an elastic subscriber to a mature stream sees its first
// fanned-out decision at the current (huge) instance while next_ is
// still 0. That decision must park in the sparse far overlay — buffering
// it in the dense ring would allocate O(absolute instance id) slots —
// and surface once the trim-horizon jump moves the frontier to it.
TEST_F(AcceptorTest, LearnerParksFarDecisionsDuringCatchUp) {
  LearnerHost host(&sim, &net, 65);
  host.init({acc->id()});
  host.learner->start(0);
  sim.run_until(sim.now() + 10 * kMillisecond);

  const paxos::InstanceId huge = 50'000'000;
  net.send(sender->id(), host.id(),
           std::make_shared<DecisionMsg>(1, huge, make_value(7, 0)), 0);
  sim.run_until(sim.now() + 10 * kMillisecond);
  EXPECT_TRUE(host.delivered.empty());
  EXPECT_LE(host.learner->pending_capacity(), 1024u);  // not O(instance id)

  // The acceptors trimmed to the decision's instance: recovery jumps the
  // frontier there and the parked decision is promoted and delivered.
  auto reply = std::make_shared<RecoverReplyMsg>();
  reply->stream = 1;
  reply->trim_horizon = huge;
  reply->decided_watermark = huge + 1;
  net.send(sender->id(), host.id(), reply, 0);
  sim.run_until(sim.now() + 100 * kMillisecond);
  ASSERT_EQ(host.delivered.size(), 1u);
  EXPECT_EQ(host.delivered[0].first, huge);
  EXPECT_EQ(host.delivered[0].second, 7u);
  EXPECT_EQ(host.learner->next_instance(), huge + 1);
  EXPECT_TRUE(host.learner->caught_up());
  EXPECT_LE(host.learner->pending_capacity(), 1024u);
}

// A contiguous parked run is promoted window-by-window inside a single
// delivery sweep, keeping the dense ring's span (and capacity) bounded
// while everything still arrives at the sink in instance order.
TEST_F(AcceptorTest, LearnerPromotesParkedRunInOneSweep) {
  LearnerHost host(&sim, &net, 66);
  host.init({acc->id()});
  host.learner->start(0);
  sim.run_until(sim.now() + 10 * kMillisecond);

  // 1..800 arrive while 0 is missing: the tail lands beyond the dense
  // window and parks in the far overlay.
  for (paxos::InstanceId i = 1; i <= 800; ++i) {
    net.send(sender->id(), host.id(),
             std::make_shared<DecisionMsg>(1, i, make_value(100 + i, i)), 0);
  }
  sim.run_until(sim.now() + 10 * kMillisecond);
  EXPECT_TRUE(host.delivered.empty());
  EXPECT_LE(host.learner->pending_capacity(), 1024u);

  net.send(sender->id(), host.id(),
           std::make_shared<DecisionMsg>(1, 0, make_value(100, 0)), 0);
  sim.run_until(sim.now() + 10 * kMillisecond);
  ASSERT_EQ(host.delivered.size(), 801u);
  for (paxos::InstanceId i = 0; i <= 800; ++i) {
    EXPECT_EQ(host.delivered[i].first, i);
    EXPECT_EQ(host.delivered[i].second, 100 + i);
  }
  EXPECT_LE(host.learner->pending_capacity(), 1024u);
}

// ------------------------------------------------------- StreamQueue --

TEST(StreamQueueTest, InitialisesFromFirstProposal) {
  multicast::StreamQueue q(1);
  EXPECT_FALSE(q.has_next());
  q.push_proposal(make_value(1, 100));
  EXPECT_TRUE(q.has_next());
  EXPECT_EQ(q.next_index(), 100u);
}

TEST(StreamQueueTest, SlotAccountingAcrossBatchesAndSkips) {
  multicast::StreamQueue q(1);
  Proposal batch;
  batch.first_slot = 0;
  for (uint64_t i = 0; i < 3; ++i) {
    Command c;
    c.id = i;
    batch.commands.push_back(c);
  }
  q.push_proposal(batch);
  Proposal skip;
  skip.first_slot = 3;
  skip.skip_slots = 5;
  q.push_proposal(skip);
  EXPECT_EQ(q.buffered_slots(), 8u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(q.next_is_value());
    q.consume();
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(q.next_is_value());
    q.consume();
  }
  EXPECT_FALSE(q.has_next());
  EXPECT_EQ(q.next_index(), 8u);
}

TEST(StreamQueueTest, DuplicatePushIgnored) {
  multicast::StreamQueue q(1);
  q.push_proposal(make_value(1, 0));
  q.push_proposal(make_value(1, 0));  // duplicate
  EXPECT_EQ(q.buffered_slots(), 1u);
}

TEST(StreamQueueTest, PartialOverlapIsClipped) {
  multicast::StreamQueue q(1);
  Proposal first;
  first.first_slot = 0;
  for (uint64_t i = 0; i < 4; ++i) {
    Command c;
    c.id = i;
    first.commands.push_back(c);
  }
  q.push_proposal(first);
  // Overlapping proposal covering [2, 6): only slots 4 and 5 are new.
  Proposal second;
  second.first_slot = 2;
  for (uint64_t i = 2; i < 6; ++i) {
    Command c;
    c.id = i;
    second.commands.push_back(c);
  }
  q.push_proposal(second);
  EXPECT_EQ(q.buffered_slots(), 6u);
  for (uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(q.peek_value().id, i);
    q.consume();
  }
}

TEST(StreamQueueTest, FastForwardDropsBufferedSlots) {
  multicast::StreamQueue q(1);
  Proposal skip;
  skip.first_slot = 0;
  skip.skip_slots = 100;
  q.push_proposal(skip);
  q.push_proposal(make_value(7, 100));
  q.fast_forward(100);
  EXPECT_EQ(q.next_index(), 100u);
  EXPECT_TRUE(q.next_is_value());
  EXPECT_EQ(q.peek_value().id, 7u);
}

TEST(StreamQueueTest, FastForwardBeyondBufferSetsFloor) {
  multicast::StreamQueue q(1);
  q.push_proposal(make_value(1, 0));
  q.fast_forward(50);
  EXPECT_EQ(q.next_index(), 50u);
  EXPECT_FALSE(q.has_next());
  q.push_proposal(make_value(2, 10));  // below the floor: clipped
  EXPECT_FALSE(q.has_next());
  q.push_proposal(make_value(3, 50));
  EXPECT_TRUE(q.has_next());
  EXPECT_EQ(q.peek_value().id, 3u);
}

TEST(StreamQueueTest, NoopProposalContributesNothing) {
  multicast::StreamQueue q(1);
  Proposal noop;
  noop.first_slot = 0;
  q.push_proposal(noop);
  EXPECT_FALSE(q.has_next());
}

TEST(StreamQueueTest, AdjacentSkipRunsCoalesce) {
  multicast::StreamQueue q(1);
  for (int i = 0; i < 10; ++i) {
    Proposal skip;
    skip.first_slot = static_cast<uint64_t>(i) * 5;
    skip.skip_slots = 5;
    q.push_proposal(skip);
  }
  EXPECT_EQ(q.buffered_slots(), 50u);
  q.fast_forward(50);  // consumes all runs in O(runs)
  EXPECT_EQ(q.next_index(), 50u);
}

}  // namespace
}  // namespace epx
