// Recovery scenario matrix — durable vs diskless acceptors under crash,
// restart and power-loss faults (DESIGN.md §14).
//
// Five scenarios, each on a fresh 1-stream/3-acceptor/2-replica cluster
// under closed-loop load:
//
//   1. single-acceptor restart, diskless: the ring resumes via
//      coordinator retries but the restarted acceptor has forgotten its
//      decided log (it cannot serve catch-up below the crash point).
//   2. single-acceptor restart, durable: the journal is replayed on
//      restart and the decided log survives the crash.
//   3. slow journal device on the quorum-completing acceptor vs the
//      ring tail: the quorum member's fsync sits on the decision path
//      and drags end-to-end latency; the tail's does not.
//   4. checkpoint + compaction under auto-trim load: the journal stays
//      bounded and the trim horizon survives a restart.
//   5. full-ring power loss (acceptors + leader): a standby takes over
//      via phase 1 — durable journals carry the decided history through
//      the blackout; a diskless ring restarts empty, so everything
//      decided before the blackout is gone for good.
#include <cstdio>

#include "bench/bench_common.h"
#include "harness/telemetry_flags.h"

using namespace epx;            // NOLINT(google-build-using-namespace)
using namespace epx::harness;   // NOLINT(google-build-using-namespace)

namespace {

/// --telemetry-out wires the restart scenarios (1 & 2) to the in-sim
/// telemetry plane: their timelines carry the crash/restart annotations
/// and the post-restart scrape windows, `x.json` -> `x.durable.json` /
/// `x.diskless.json`. The other scenarios run untouched.
TelemetryFlags g_telemetry;

struct Rig {
  Cluster cluster;
  StreamId stream;
  elastic::Replica* r1;
  elastic::Replica* r2;
  LoadClient* client;

  explicit Rig(const ClusterOptions& options, bool with_standby = false)
      : cluster(options), stream(cluster.add_stream()) {
    if (with_standby) standby = cluster.add_standby_coordinator(stream);
    r1 = cluster.add_replica(1, {stream});
    r2 = cluster.add_replica(1, {stream});
    LoadClient::Config cfg;
    cfg.threads = 8;
    cfg.payload_bytes = 1024;
    cfg.think_time = 2 * kMillisecond;
    cfg.retry_timeout = 700 * kMillisecond;
    cfg.route = [s = stream] { return s; };
    client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
    client->start();
  }

  paxos::Coordinator* standby = nullptr;
  std::vector<paxos::Acceptor*> acceptors() { return cluster.acceptors(stream); }
};

ClusterOptions matrix_options(paxos::StoragePolicy policy) {
  ClusterOptions options;
  options.storage = policy;
  return options;
}

const char* policy_name(paxos::StoragePolicy policy) {
  return policy == paxos::StoragePolicy::kDurable ? "durable" : "diskless";
}

// --- 1 & 2: restart one ring member under load ---------------------------

void run_single_restart(paxos::StoragePolicy policy) {
  const TelemetryFlags telemetry = g_telemetry.with_tag(policy_name(policy));
  ClusterOptions options = matrix_options(policy);
  telemetry.apply(options);
  Rig rig(options);
  rig.cluster.run_until(2 * kSecond);

  auto* victim = rig.acceptors()[1];  // the quorum-completing acceptor
  const paxos::InstanceId probe = victim->decided_contiguous() - 1;
  const size_t log_before = victim->log_size();
  victim->crash();
  rig.cluster.run_for(300 * kMillisecond);
  victim->restart();  // durable: synchronous journal replay

  const bool remembers = victim->has_decided(probe);
  const size_t log_after = victim->log_size();
  const uint64_t journal =
      victim->wal_store() != nullptr ? victim->wal_store()->journal_records() : 0;

  const uint64_t delivered_at_restart = rig.r1->delivered();
  rig.cluster.run_until(6 * kSecond);
  const uint64_t resumed = rig.r1->delivered() - delivered_at_restart;

  std::printf("%-22s log %zu -> %zu entries; instance %llu %s; %llu journal "
              "records; %llu deliveries after restart\n",
              policy_name(policy), log_before, log_after,
              static_cast<unsigned long long>(probe),
              remembers ? "remembered" : "forgotten",
              static_cast<unsigned long long>(journal),
              static_cast<unsigned long long>(resumed));
  if (policy == paxos::StoragePolicy::kDurable) {
    paper_check("matrix.durable-restart",
                "restarted acceptor replays its journal and keeps the decided log",
                remembers && journal > 0 && resumed > 100, "see row above");
  } else {
    paper_check("matrix.diskless-restart",
                "diskless restart forgets the log yet the ring resumes via retries",
                !remembers && log_after < log_before && resumed > 100,
                "see row above");
  }
  telemetry.finish(rig.cluster);
}

// --- 3: slow journal device on vs off the decision path ------------------

struct SlowDiskResult {
  double rate;    // deliveries/sec at replica 1, steady state
  double p95_ms;  // client 95th percentile
};

SlowDiskResult run_slow_disk(int slow_index) {
  Rig rig(matrix_options(paxos::StoragePolicy::kDurable));
  if (slow_index >= 0) {
    sim::DeviceParams slow;
    slow.fsync_latency = 5 * kMillisecond;  // a struggling disk
    rig.acceptors()[static_cast<size_t>(slow_index)]->set_storage(
        paxos::StoragePolicy::kDurable, slow);
  }
  const Tick end = 5 * kSecond;
  rig.cluster.run_until(end);
  return {rig.r1->delivery_series().average_rate(1 * kSecond, end),
          to_millis(rig.client->latency().p95())};
}

// --- 4: checkpoints + compaction under auto-trim -------------------------

void run_compaction() {
  ClusterOptions options = matrix_options(paxos::StoragePolicy::kDurable);
  options.params.auto_trim = true;
  options.params.trim_interval = 500 * kMillisecond;
  options.params.learner_report_interval = 250 * kMillisecond;
  options.params.trim_backlog = 500;
  Rig rig(options);
  rig.cluster.run_until(6 * kSecond);

  auto* acc = rig.acceptors()[0];
  const uint64_t decided = acc->decided_contiguous();
  const uint64_t trim_before = acc->trim_horizon();
  const uint64_t journal = acc->wal_store()->journal_records();
  const uint64_t compactions = acc->wal_store()->compactions();

  acc->crash();
  rig.cluster.run_for(200 * kMillisecond);
  acc->restart();
  const uint64_t trim_after = acc->trim_horizon();

  std::printf("%llu instances decided; trim horizon %llu; journal %llu records "
              "after %llu compactions; trim horizon after restart %llu\n",
              static_cast<unsigned long long>(decided),
              static_cast<unsigned long long>(trim_before),
              static_cast<unsigned long long>(journal),
              static_cast<unsigned long long>(compactions),
              static_cast<unsigned long long>(trim_after));
  paper_check("matrix.compaction",
              "checkpointed journal stays bounded by the live span",
              compactions > 0 && journal < 8 * options.params.trim_backlog,
              "see row above");
  paper_check("matrix.trim-persisted",
              "trim horizon survives restart via the checkpoint record",
              trim_before > 0 && trim_after == trim_before, "see row above");
}

// --- 5: full-ring power loss, standby leader rebuilds via phase 1 --------

struct TotalLossResult {
  size_t log_before = 0;         // quorum acceptor's log at the blackout
  size_t log_after = 0;          // ... right after the ring restarts
  bool probe_survived = false;   // a pre-blackout decided instance
  uint64_t resumed = 0;          // deliveries after the ring came back
};

TotalLossResult run_total_loss(paxos::StoragePolicy policy) {
  Rig rig(matrix_options(policy), /*with_standby=*/true);
  rig.cluster.run_until(2 * kSecond);

  TotalLossResult result;
  result.log_before = rig.acceptors()[1]->log_size();
  const paxos::InstanceId probe = rig.acceptors()[1]->decided_contiguous() - 1;
  const uint64_t delivered_before = rig.r1->delivered();

  rig.cluster.coordinator(rig.stream)->crash();  // stays down
  for (auto* a : rig.acceptors()) a->crash();
  rig.cluster.run_for(300 * kMillisecond);
  for (auto* a : rig.acceptors()) a->restart();  // durable: journal replay
  result.log_after = rig.acceptors()[1]->log_size();
  result.probe_survived = rig.acceptors()[1]->has_decided(probe);
  rig.cluster.directory().set_coordinator(rig.stream, rig.standby->id());

  rig.cluster.run_until(8 * kSecond);
  result.resumed = rig.r1->delivered() - delivered_before;

  std::printf("%-22s log %zu -> %zu entries across the blackout; decided "
              "instance %llu %s; %llu deliveries after takeover\n",
              policy_name(policy), result.log_before, result.log_after,
              static_cast<unsigned long long>(probe),
              result.probe_survived ? "survived" : "did not survive",
              static_cast<unsigned long long>(result.resumed));
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  bench::bench_logging();
  bench::parse_threads(argc, argv);
  g_telemetry = TelemetryFlags::parse(argc, argv);

  std::printf("Recovery scenario matrix — write-ahead acceptor durability under "
              "crash/restart/power-loss faults (1 stream, 3 acceptors, 2 replicas, "
              "8 closed-loop clients, 1KB values)\n");

  print_header("1+2. Single-acceptor restart (quorum member, 300 ms outage)");
  run_single_restart(paxos::StoragePolicy::kDiskless);
  run_single_restart(paxos::StoragePolicy::kDurable);

  print_header("3. Slow journal device (5 ms fsync) on vs off the decision path");
  const SlowDiskResult base = run_slow_disk(-1);
  const SlowDiskResult quorum = run_slow_disk(1);
  const SlowDiskResult tail = run_slow_disk(2);
  std::printf("healthy ring            %7.0f ops/s  p95 %6.2f ms\n", base.rate,
              base.p95_ms);
  std::printf("slow quorum acceptor    %7.0f ops/s  p95 %6.2f ms\n", quorum.rate,
              quorum.p95_ms);
  std::printf("slow ring tail          %7.0f ops/s  p95 %6.2f ms\n", tail.rate,
              tail.p95_ms);
  paper_check("matrix.slow-quorum",
              "a slow quorum member's fsync drags every decision",
              quorum.p95_ms > base.p95_ms + 4.0 && quorum.rate < base.rate * 0.8,
              "see rows above");
  paper_check("matrix.slow-tail",
              "a slow ring tail journals off the critical path",
              tail.p95_ms < base.p95_ms + 2.0 && tail.rate > base.rate * 0.8,
              "see rows above");

  print_header("4. Checkpoint + log compaction under auto-trim load");
  run_compaction();

  print_header("5. Full-ring power loss (leader + all acceptors, standby takeover)");
  const TotalLossResult durable = run_total_loss(paxos::StoragePolicy::kDurable);
  const TotalLossResult diskless = run_total_loss(paxos::StoragePolicy::kDiskless);
  paper_check("matrix.total-loss-durable",
              "journal replay carries the decided history through a full-ring "
              "power loss and the standby resumes the stream",
              durable.probe_survived && durable.log_after >= durable.log_before &&
                  durable.resumed > 100,
              "see rows above");
  paper_check("matrix.total-loss-diskless",
              "a diskless ring restarts empty: every decided instance below the "
              "frontier is unrecoverable by any future catch-up",
              !diskless.probe_survived && diskless.log_after == 0,
              "see rows above");
  return 0;
}
