// Cluster-level benchmark: end-to-end throughput, latency and CPU of
// (a) a broadcast cluster (1 stream, 2 replicas, closed-loop clients)
// and (b) a partitioned KV store, each run for a few virtual seconds.
//
// Writes BENCH_cluster.json (override with --json=path): one object per
// scenario with headline numbers plus the full metrics-registry
// snapshot, all pulled through the observability subsystem — the bench
// touches no role-level stat getters.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "bench/bench_common.h"
#include "harness/telemetry_flags.h"
#include "harness/trace_flags.h"

using namespace epx;            // NOLINT(google-build-using-namespace)
using namespace epx::harness;   // NOLINT(google-build-using-namespace)

namespace {

/// Each scenario owns a cluster, so a traced run writes one file per
/// scenario: `--trace-out=x.json` becomes x.broadcast.json / x.kv.json.
TraceFlags scenario_trace(const TraceFlags& base, const char* scenario) {
  TraceFlags flags = base;
  if (flags.enabled()) {
    const std::string tag = std::string(".") + scenario;
    const size_t dot = flags.out.rfind('.');
    if (dot == std::string::npos) {
      flags.out += tag;
    } else {
      flags.out.insert(dot, tag);
    }
  }
  return flags;
}

struct ScenarioResult {
  std::string name;
  double seconds = 0.0;
  double throughput = 0.0;   // completed ops/s (client side)
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double replica_cpu_pct = 0.0;  // busiest replica, mean over the run
  std::string metrics_json;      // registry snapshot (no per-second series)
};

double cpu_pct(const obs::MetricsRegistry& metrics, const std::string& node,
               Tick elapsed) {
  const obs::Counter* busy =
      metrics.find_counter(obs::metric_key("cpu.busy", {{"node", node}}));
  if (busy == nullptr || elapsed <= 0) return 0.0;
  return static_cast<double>(busy->total()) / static_cast<double>(elapsed) * 100.0;
}

void latency_quantiles(const obs::MetricsRegistry& metrics, const std::string& node,
                       ScenarioResult* out) {
  const obs::Timer* t =
      metrics.find_timer(obs::metric_key("client.latency", {{"node", node}}));
  if (t == nullptr) return;
  out->p50_ms = to_millis(t->total().p50());
  out->p95_ms = to_millis(t->total().p95());
  out->p99_ms = to_millis(t->total().p99());
}

ScenarioResult run_broadcast(Tick duration, const TraceFlags& trace_flags,
                             const TelemetryFlags& telemetry_flags) {
  auto options = bench::broadcast_options();
  options.params.admission_rate = 0.0;  // unthrottled
  telemetry_flags.apply(options);
  Cluster cluster(options);
  trace_flags.enable(cluster.sim());
  const StreamId s1 = cluster.add_stream();
  elastic::Replica::Config rcfg;
  rcfg.group = 1;
  rcfg.initial_streams = {s1};
  rcfg.params = options.params;
  bench::tune_broadcast_replica(rcfg);
  auto* r1 = cluster.add_replica(rcfg);
  cluster.add_replica(rcfg);

  LoadClient::Config cfg;
  cfg.threads = 8;
  cfg.payload_bytes = 1024;
  cfg.route = [s1] { return s1; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  cluster.run_until(duration);

  const obs::MetricsRegistry& metrics = cluster.sim().metrics();
  ScenarioResult r;
  r.name = "broadcast";
  r.seconds = to_seconds(duration);
  const obs::Counter* completions = metrics.find_counter(
      obs::metric_key("client.completions", {{"node", client->name()}}));
  r.throughput = completions != nullptr
                     ? static_cast<double>(completions->total()) / r.seconds
                     : 0.0;
  latency_quantiles(metrics, client->name(), &r);
  r.replica_cpu_pct = std::max(cpu_pct(metrics, r1->name(), duration),
                               cpu_pct(metrics, "replica2", duration));
  r.metrics_json = metrics.to_json(/*include_series=*/false);
  trace_flags.finish(cluster.sim());
  telemetry_flags.finish(cluster);
  return r;
}

ScenarioResult run_kv(Tick duration, const TraceFlags& trace_flags,
                      const TelemetryFlags& telemetry_flags) {
  auto options = bench::kv_options();
  telemetry_flags.apply(options);
  KvCluster kvc(options);
  trace_flags.enable(kvc.cluster().sim());
  const uint32_t p1 = kvc.add_partition(2);
  (void)p1;
  kvc.publish();

  kv::KvClient::Config ccfg;
  ccfg.threads = 50;
  ccfg.key_space = 50000;
  ccfg.value_bytes = 1024;
  auto* client = kvc.add_client(ccfg);
  client->start();
  Cluster& cluster = kvc.cluster();
  cluster.run_until(duration);

  const obs::MetricsRegistry& metrics = cluster.sim().metrics();
  ScenarioResult r;
  r.name = "kv";
  r.seconds = to_seconds(duration);
  const obs::Counter* completions = metrics.find_counter(
      obs::metric_key("client.completions", {{"node", client->name()}}));
  r.throughput = completions != nullptr
                     ? static_cast<double>(completions->total()) / r.seconds
                     : 0.0;
  latency_quantiles(metrics, client->name(), &r);
  for (const auto* replica : kvc.replicas()) {
    r.replica_cpu_pct =
        std::max(r.replica_cpu_pct, cpu_pct(metrics, replica->name(), duration));
  }
  r.metrics_json = metrics.to_json(/*include_series=*/false);
  trace_flags.finish(cluster.sim());
  telemetry_flags.finish(cluster);
  return r;
}

/// Telemetry overhead A/B: the broadcast scenario with the telemetry
/// plane off, then on at a sweep of scrape intervals. Scrapes are part
/// of the workload (agent CPU, NIC bytes, monitor CPU), so the honest
/// cost signal is the in-sim throughput delta — deterministic, unlike
/// wall time — plus the sample/point volume that bought it.
struct TelemetryOverheadPoint {
  uint64_t interval_ms = 0;  // 0 = telemetry disabled (the baseline)
  double throughput = 0.0;   // client ops/s, virtual time
  uint64_t samples = 0;      // scrape messages ingested by the monitor
  uint64_t points = 0;
};

TelemetryOverheadPoint run_overhead_point(Tick duration, uint64_t interval_ms) {
  auto options = bench::broadcast_options();
  options.params.admission_rate = 0.0;
  if (interval_ms > 0) {
    options.telemetry.enabled = true;
    options.telemetry.interval = static_cast<Tick>(interval_ms) * kMillisecond;
  }
  Cluster cluster(options);
  const StreamId s1 = cluster.add_stream();
  elastic::Replica::Config rcfg;
  rcfg.group = 1;
  rcfg.initial_streams = {s1};
  rcfg.params = options.params;
  bench::tune_broadcast_replica(rcfg);
  cluster.add_replica(rcfg);
  cluster.add_replica(rcfg);
  LoadClient::Config cfg;
  cfg.threads = 8;
  cfg.payload_bytes = 1024;
  cfg.route = [s1] { return s1; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  cluster.run_until(duration);

  TelemetryOverheadPoint p;
  p.interval_ms = interval_ms;
  const obs::Counter* completions = cluster.sim().metrics().find_counter(
      obs::metric_key("client.completions", {{"node", client->name()}}));
  if (completions != nullptr) {
    p.throughput = static_cast<double>(completions->total()) / to_seconds(duration);
  }
  if (auto* monitor = cluster.monitor_service()) {
    p.samples = monitor->store().samples_ingested();
    p.points = monitor->store().points_ingested();
  }
  return p;
}

std::vector<TelemetryOverheadPoint> run_telemetry_overhead(Tick duration) {
  std::vector<TelemetryOverheadPoint> out;
  for (uint64_t interval_ms : {0, 10, 100, 1000}) {
    out.push_back(run_overhead_point(duration, interval_ms));
  }
  return out;
}

void append_telemetry_overhead(std::string* out,
                               const std::vector<TelemetryOverheadPoint>& sweep) {
  const double baseline = sweep.empty() ? 0.0 : sweep.front().throughput;
  for (const TelemetryOverheadPoint& p : sweep) {
    if (p.interval_ms == 0) continue;
    const double overhead_pct =
        baseline > 0 ? (baseline - p.throughput) / baseline * 100.0 : 0.0;
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "  \"BM_TelemetryOverhead/interval_ms:%llu\": "
                  "{\"ops_per_second\": %.1f, \"baseline_ops_per_second\": %.1f, "
                  "\"overhead_pct\": %.2f, \"samples\": %llu, \"points\": %llu},\n",
                  static_cast<unsigned long long>(p.interval_ms), p.throughput,
                  baseline, overhead_pct, static_cast<unsigned long long>(p.samples),
                  static_cast<unsigned long long>(p.points));
    *out += buf;
  }
}

/// Thread-scaling series over the same eight-ring topology as
/// micro_components' BM_SimulatedClusterSecond/T:N: engine events per
/// WALL second at each thread count, T=1 being the serial reference
/// engine. Virtual-time results are identical at every T (the
/// differential tests enforce it); only the wall clock moves.
struct ScalingPoint {
  size_t threads = 1;
  double events_per_wall_sec = 0.0;
  double speedup = 1.0;  // vs the T=1 run in this same series
};

ScalingPoint run_scaling_point(size_t threads, Tick duration) {
  ClusterOptions options;
  options.threads = threads;
  Cluster cluster(options);
  constexpr int kStreams = 8;
  for (int i = 0; i < kStreams; ++i) {
    const StreamId s = cluster.add_stream();
    cluster.add_replica(static_cast<paxos::GroupId>(i + 1), {s});
    LoadClient::Config cfg;
    cfg.threads = 8;
    cfg.payload_bytes = 1024;
    cfg.route = [s] { return s; };
    auto* client = cluster.spawn<LoadClient>("client" + std::to_string(i + 1),
                                             &cluster.directory(), cfg);
    client->start();
  }
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run_until(duration);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  ScalingPoint p;
  p.threads = threads;
  if (wall > 0) {
    p.events_per_wall_sec =
        static_cast<double>(cluster.sim().events_processed()) / wall;
  }
  return p;
}

std::vector<ScalingPoint> run_thread_scaling(Tick duration) {
  std::vector<ScalingPoint> out;
  for (size_t threads : {1, 2, 4, 8}) {
    out.push_back(run_scaling_point(threads, duration));
    if (out.front().events_per_wall_sec > 0) {
      out.back().speedup =
          out.back().events_per_wall_sec / out.front().events_per_wall_sec;
    }
  }
  return out;
}

/// Geo/WAN twin of the thread-scaling series: bench::geo_topology()'s
/// four regions on region-affine shards, so every cross-shard link is
/// 32-90 ms wide and the per-shard-pair lookahead matrix (not the
/// global minimum) sets the window widths. This is the workload the
/// matrix exists for: shards batch tens of virtual milliseconds per
/// exchange instead of one default-link hop.
ScalingPoint run_geo_scaling_point(size_t threads, Tick duration) {
  ClusterOptions options;
  options.threads = threads;
  options.topology = bench::geo_topology();
  Cluster cluster(options);
  const std::vector<elastic::Replica*> replicas = bench::build_geo_cluster(cluster);
  (void)replicas;
  const auto t0 = std::chrono::steady_clock::now();
  cluster.run_until(duration);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  ScalingPoint p;
  p.threads = threads;
  if (wall > 0) {
    p.events_per_wall_sec =
        static_cast<double>(cluster.sim().events_processed()) / wall;
  }
  return p;
}

std::vector<ScalingPoint> run_geo_thread_scaling(Tick duration) {
  std::vector<ScalingPoint> out;
  for (size_t threads : {1, 2, 4, 8}) {
    out.push_back(run_geo_scaling_point(threads, duration));
    if (out.front().events_per_wall_sec > 0) {
      out.back().speedup =
          out.back().events_per_wall_sec / out.front().events_per_wall_sec;
    }
  }
  return out;
}

void append_scaling(std::string* out, const std::vector<ScalingPoint>& series) {
  for (const ScalingPoint& p : series) {
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "  \"BM_SimulatedClusterSecond/T%zu\": {\"events_per_second\": "
                  "%.0f, \"speedup_vs_t1\": %.2f},\n",
                  p.threads, p.events_per_wall_sec, p.speedup);
    *out += buf;
  }
}

/// Geo series entries carry the host core count: wall-clock speedup is
/// bounded by physical parallelism, so a reader (or a gate) comparing
/// runs across machines must know how many cores the number was
/// recorded on. A T=8 point from a 1-core host showing ~1.0x is the
/// honest result there, not a regression.
void append_geo_scaling(std::string* out, const std::vector<ScalingPoint>& series) {
  const unsigned host_cores = std::thread::hardware_concurrency();
  for (const ScalingPoint& p : series) {
    char buf[352];
    std::snprintf(buf, sizeof(buf),
                  "  \"BM_SimulatedClusterSecond/geo/T:%zu\": "
                  "{\"events_per_second\": %.0f, \"speedup_vs_t1\": %.2f, "
                  "\"host_cores\": %u%s},\n",
                  p.threads, p.events_per_wall_sec, p.speedup, host_cores,
                  host_cores < p.threads
                      ? ", \"note\": \"host has fewer cores than shards; "
                        "wall-clock speedup is core-bound\""
                      : "");
    *out += buf;
  }
}

void append_scenario(std::string* out, const ScenarioResult& r, bool last) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\n"
                "    \"virtual_seconds\": %.1f,\n"
                "    \"throughput_ops_per_sec\": %.1f,\n"
                "    \"latency_p50_ms\": %.3f,\n"
                "    \"latency_p95_ms\": %.3f,\n"
                "    \"latency_p99_ms\": %.3f,\n"
                "    \"replica_cpu_pct\": %.1f,\n",
                r.name.c_str(), r.seconds, r.throughput, r.p50_ms, r.p95_ms, r.p99_ms,
                r.replica_cpu_pct);
  *out += buf;
  *out += "    \"metrics\": ";
  *out += r.metrics_json;
  *out += "\n  }";
  *out += last ? "\n" : ",\n";
}

}  // namespace

int main(int argc, char** argv) {
  bench::bench_logging();
  bench::parse_threads(argc, argv);
  const TraceFlags trace_flags = TraceFlags::parse(argc, argv);
  const TelemetryFlags telemetry_flags = TelemetryFlags::parse(argc, argv);
  std::string json_path = "BENCH_cluster.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const Tick duration = 5 * kSecond;
  const ScenarioResult broadcast =
      run_broadcast(duration, scenario_trace(trace_flags, "broadcast"),
                    telemetry_flags.with_tag("broadcast"));
  const ScenarioResult kv = run_kv(duration, scenario_trace(trace_flags, "kv"),
                                   telemetry_flags.with_tag("kv"));
  const std::vector<ScalingPoint> scaling = run_thread_scaling(duration);
  const std::vector<ScalingPoint> geo = run_geo_thread_scaling(duration);
  const std::vector<TelemetryOverheadPoint> overhead = run_telemetry_overhead(duration);

  print_header("Cluster bench (5 virtual seconds per scenario)");
  for (const ScenarioResult* r : {&broadcast, &kv}) {
    std::printf("%-10s %10.1f ops/s  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  "
                "replica CPU %5.1f%%\n",
                r->name.c_str(), r->throughput, r->p50_ms, r->p95_ms, r->p99_ms,
                r->replica_cpu_pct);
  }
  for (const ScalingPoint& p : scaling) {
    std::printf("8-ring cluster-second  T=%zu  %12.0f events/wall-s  "
                "speedup %.2fx\n",
                p.threads, p.events_per_wall_sec, p.speedup);
  }
  const unsigned host_cores = std::thread::hardware_concurrency();
  for (const ScalingPoint& p : geo) {
    std::printf("geo 4-region cluster-second  T=%zu  %12.0f events/wall-s  "
                "speedup %.2fx%s\n",
                p.threads, p.events_per_wall_sec, p.speedup,
                host_cores < p.threads ? "  (core-bound host)" : "");
  }
  for (const TelemetryOverheadPoint& p : overhead) {
    if (p.interval_ms == 0) continue;
    std::printf("telemetry overhead  interval=%4llums  %10.1f ops/s  "
                "(baseline %.1f)  %llu samples\n",
                static_cast<unsigned long long>(p.interval_ms), p.throughput,
                overhead.front().throughput,
                static_cast<unsigned long long>(p.samples));
  }

  std::string json = "{\n";
  append_scaling(&json, scaling);
  append_geo_scaling(&json, geo);
  append_telemetry_overhead(&json, overhead);
  append_scenario(&json, broadcast, /*last=*/false);
  append_scenario(&json, kv, /*last=*/true);
  json += "}\n";
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  out << json;
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
