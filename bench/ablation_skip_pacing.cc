// Ablation C — the lambda/delta_t skip mechanism (paper §III-B).
//
// "To handle imbalanced traffic among streams and ensure that messages
// will not be delivered at the pace of the slowest stream, processes can
// skip Paxos executions in a stream."
//
// Part 1: a replica subscribed to one busy and one idle stream, with
// pacing disabled (lambda = 0): dMerge stalls on the idle stream and
// delivery stops. With pacing on, full throughput.
//
// Part 2: latency sensitivity to the skip-proposal spacing: coarser skip
// runs make values of the busy stream wait longer for the idle stream's
// position to advance.
#include <cstdio>

#include "bench/bench_common.h"

using namespace epx;            // NOLINT(google-build-using-namespace)
using namespace epx::harness;   // NOLINT(google-build-using-namespace)

namespace {

struct Outcome {
  uint64_t delivered = 0;
  double p95_ms = 0;
  double mean_ms = 0;
};

Outcome run_scenario(double lambda, Tick skip_interval) {
  auto options = bench::broadcast_options();
  options.params.lambda = lambda;
  options.params.skip_interval = skip_interval;
  Cluster cluster(options);
  const StreamId busy = cluster.add_stream();
  const StreamId idle = cluster.add_stream();

  elastic::Replica::Config rcfg;
  rcfg.group = 1;
  rcfg.initial_streams = {busy, idle};
  rcfg.params = options.params;
  bench::tune_broadcast_replica(rcfg);
  auto* r1 = cluster.add_replica(rcfg);

  LoadClient::Config cfg;
  cfg.threads = 10;
  cfg.payload_bytes = 32 * 1024;
  cfg.think_time = 24 * kMillisecond;
  cfg.retry_timeout = 3600 * kSecond;  // measure raw delivery latency
  cfg.route = [busy] { return busy; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();

  cluster.run_until(20 * kSecond);
  Outcome out;
  out.delivered = r1->delivered();
  out.p95_ms = to_millis(client->latency().p95());
  out.mean_ms = to_millis(static_cast<Tick>(client->latency().mean()));
  return out;
}

}  // namespace

int main() {
  bench::bench_logging();
  std::printf("Ablation — the skip mechanism: merging a busy and an idle stream\n");

  const Outcome without = run_scenario(/*lambda=*/0.0, 10 * kMillisecond);
  const Outcome with = run_scenario(4000.0, 10 * kMillisecond);

  print_header("Part 1: pacing on/off (20s run)");
  std::printf("%-22s %14s %14s\n", "", "lambda=0", "lambda=4000");
  std::printf("%-22s %14llu %14llu\n", "commands delivered",
              static_cast<unsigned long long>(without.delivered),
              static_cast<unsigned long long>(with.delivered));
  std::printf("%-22s %11.1f ms %11.1f ms\n", "p95 latency", without.p95_ms, with.p95_ms);

  print_header("Part 2: skip spacing vs latency (lambda=4000)");
  std::printf("%14s %14s %14s\n", "spacing", "p95 (ms)", "mean (ms)");
  std::vector<std::pair<Tick, Outcome>> sweep;
  for (Tick spacing : {2 * kMillisecond, 10 * kMillisecond, 50 * kMillisecond,
                       100 * kMillisecond, 250 * kMillisecond}) {
    sweep.emplace_back(spacing, run_scenario(4000.0, spacing));
    std::printf("%11.0f ms %14.2f %14.2f\n", to_millis(spacing),
                sweep.back().second.p95_ms, sweep.back().second.mean_ms);
  }

  print_header("Paper checks");
  char measured[160];
  std::snprintf(measured, sizeof(measured), "%llu vs %llu delivered",
                static_cast<unsigned long long>(without.delivered),
                static_cast<unsigned long long>(with.delivered));
  paper_check("ablation.skip-required",
              "without skips, dMerge delivers at the pace of the slowest (idle) "
              "stream — effectively nothing",
              without.delivered < with.delivered / 100, measured);
  std::snprintf(measured, sizeof(measured), "p95 %.2f ms (fine) vs %.2f ms (coarse)",
                sweep.front().second.p95_ms, sweep.back().second.p95_ms);
  paper_check("ablation.skip-spacing",
              "coarser skip spacing inflates cross-stream delivery latency",
              sweep.back().second.p95_ms > sweep.front().second.p95_ms * 2, measured);
  return 0;
}
