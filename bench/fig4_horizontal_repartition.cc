// Figure 4 — Horizontal scalability: online re-partitioning of the
// key/value store (paper §VII-D).
//
// "We start the experiment with a client VM (100 threads) that sends
// 1024-byte put commands to random keys. Two replica VMs apply these
// commands to their local in-memory storage ... Initially only one
// partition is present in the system. ... At 30 seconds, one of the
// replicas subscribes to a new stream with additional 3 acceptors and
// informs the whole system 5 seconds later about the partition change."
//
// Paper result: the re-partitioning takes ~1 second (dominated by the
// client re-send timeout); afterwards per-replica throughput and CPU
// consumption are halved, so the store could now sustain 100% more
// operations per second. p95 latency 8.3 ms; system runs at 75% of peak.
#include <cstdio>

#include "bench/bench_common.h"
#include "harness/telemetry_flags.h"
#include "harness/trace_flags.h"

using namespace epx;            // NOLINT(google-build-using-namespace)
using namespace epx::harness;   // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  bench::bench_logging();
  bench::parse_threads(argc, argv);
  const TraceFlags trace_flags = TraceFlags::parse(argc, argv);
  const TelemetryFlags telemetry_flags = TelemetryFlags::parse(argc, argv);
  auto options = bench::kv_options();
  telemetry_flags.apply(options);
  KvCluster kvc(options);
  trace_flags.enable(kvc.cluster().sim());
  const uint32_t p1 = kvc.add_partition(2);
  kvc.publish();

  auto* r1 = kvc.replicas()[0];
  auto* r2 = kvc.replicas()[1];

  kv::KvClient::Config ccfg;
  ccfg.threads = 100;  // paper: 100 client threads
  ccfg.key_space = 100000;
  ccfg.value_bytes = 1024;  // paper: 1024-byte put commands
  ccfg.retry_timeout = 1 * kSecond;  // paper: ~1 s client re-send
  // ~7 ms of think time pins 100 threads at ~75% of the two-replica
  // peak, the paper's operating point.
  ccfg.think_time = 7 * kMillisecond;
  auto* client = kvc.add_client(ccfg);
  client->start();

  std::printf("Fig. 4 — Re-partitioning a key/value store under 75%% peak load "
              "(1KB puts, 100 threads): at t=30s replica 2 subscribes to a new "
              "stream, at t=35s the partition map flips\n");

  Cluster& cluster = kvc.cluster();
  cluster.run_until(30 * kSecond);
  kvc.begin_split(p1, r2, /*with_prepare=*/true);

  // Paper: the system is informed of the partition change 5 s later.
  cluster.run_until(35 * kSecond);
  kvc.complete_split(p1, r2);
  // The mover drops keys it no longer owns once it left the old stream.
  bool purged = false;
  const Tick end = 80 * kSecond;
  while (cluster.now() < end) {
    cluster.run_for(500 * kMillisecond);
    if (!purged && r2->merger().subscriptions().size() == 1) {
      r2->purge_unowned();
      purged = true;
    }
  }

  const obs::MetricsRegistry& metrics = cluster.sim().metrics();
  auto node_key = [](const char* name, const std::string& node) {
    return obs::metric_key(name, {{"node", node}});
  };
  print_rate_table(metrics, "Executed commands per replica (ops/s)",
                   {{"replica1", node_key("kv.executed", r1->name()), 1.0},
                    {"replica2", node_key("kv.executed", r2->name()), 1.0},
                    {"clients", node_key("client.completions", client->name()), 1.0}},
                   0, end);
  print_cpu_table(metrics, "CPU utilisation (%)",
                  {{"replica1", node_key("cpu.busy", r1->name())},
                   {"replica2", node_key("cpu.busy", r2->name())}},
                  0, end);
  print_latency_table(metrics, "Client latency p95 (ms)",
                      {{"p95(ms)", node_key("client.latency", client->name()), 0.95}},
                      0, end);

  print_header("Summary");
  std::printf("overall latency: %s\n", client->latency().summary().c_str());
  std::printf("client retries: %llu, wrong-partition discards: %llu\n",
              static_cast<unsigned long long>(client->retries()),
              static_cast<unsigned long long>(r1->discarded_wrong_partition() +
                                              r2->discarded_wrong_partition()));

  // Paper checks.
  const double r1_before = r1->executed_series().average_rate(20 * kSecond, 30 * kSecond);
  const double r1_after = r1->executed_series().average_rate(45 * kSecond, 75 * kSecond);
  const double r2_before = r2->executed_series().average_rate(20 * kSecond, 30 * kSecond);
  const double r2_after = r2->executed_series().average_rate(45 * kSecond, 75 * kSecond);
  const double cpu1_before = r1->utilization(20 * kSecond, 30 * kSecond) * 100;
  const double cpu1_after = r1->utilization(45 * kSecond, 75 * kSecond) * 100;
  const double cpu2_before = r2->utilization(20 * kSecond, 30 * kSecond) * 100;
  const double cpu2_after = r2->utilization(45 * kSecond, 75 * kSecond) * 100;
  const double total_before = client->completions().average_rate(20 * kSecond, 30 * kSecond);
  const double total_after = client->completions().average_rate(45 * kSecond, 75 * kSecond);

  // Duration of the re-partitioning gap: seconds (after the flip) whose
  // completion rate is below half the steady state.
  int gap_seconds = 0;
  for (Tick t = 35 * kSecond; t < 45 * kSecond; t += kSecond) {
    const auto idx = static_cast<size_t>(t / kSecond);
    if (idx < client->completions().size() &&
        client->completions().rate_at(idx) < total_before * 0.5) {
      ++gap_seconds;
    }
  }

  char measured[240];
  print_header("Paper checks");
  std::snprintf(measured, sizeof(measured),
                "replica1 %.0f -> %.0f ops/s, replica2 %.0f -> %.0f ops/s", r1_before,
                r1_after, r2_before, r2_after);
  paper_check("fig4.throughput-halves",
              "per-replica throughput halves after the split",
              r1_after < r1_before * 0.65 && r1_after > r1_before * 0.3 &&
                  r2_after < r2_before * 0.65 && r2_after > r2_before * 0.3,
              measured);
  std::snprintf(measured, sizeof(measured),
                "replica1 %.0f%% -> %.0f%%, replica2 %.0f%% -> %.0f%%", cpu1_before,
                cpu1_after, cpu2_before, cpu2_after);
  paper_check("fig4.cpu-halves", "per-replica CPU consumption drops by ~half",
              cpu1_after < cpu1_before * 0.7 && cpu2_after < cpu2_before * 0.7, measured);
  std::snprintf(measured, sizeof(measured), "total %.0f -> %.0f ops/s, gap %d s",
                total_before, total_after, gap_seconds);
  paper_check("fig4.service-continuous",
              "client throughput recovers, re-partition gap ~1 s", gap_seconds <= 2 &&
                  total_after > total_before * 0.85,
              measured);
  const double p95_ms = to_millis(client->latency().p95());
  paper_check("fig4.latency", "95th percentile latency 8.3 ms",
              p95_ms > 1.0 && p95_ms < 20.0, (std::to_string(p95_ms) + " ms").c_str());
  trace_flags.finish(cluster.sim());
  telemetry_flags.finish(cluster);
  return 0;
}
