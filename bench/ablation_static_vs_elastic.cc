// Ablation B — Elastic Paxos vs the static-subscription baseline.
//
// The paper's core claim (§I, §IV-A): "existing atomic multicast
// protocols are static ... subscriptions can only be changed by stopping
// all replicas, redefining the subscriptions, and restarting the system"
// and "existing solutions often halt the system during reconfiguration."
//
// This bench reconfigures a running broadcast group from stream S1 to
// stream S2 both ways:
//   * static baseline — replicas are stopped, new replica processes are
//     provisioned with the new subscription set and must restart/recover
//     (modelled with a conservative 5 s restart window, far less than a
//     real JVM/VM restart plus state transfer);
//   * Elastic Paxos — prepare + subscribe + unsubscribe at run time.
// Reported: seconds of downtime (windows with < 10% of steady
// throughput) and total completed operations.
#include <cstdio>

#include "bench/bench_common.h"

using namespace epx;            // NOLINT(google-build-using-namespace)
using namespace epx::harness;   // NOLINT(google-build-using-namespace)

namespace {

constexpr Tick kRestartWindow = 5 * kSecond;  // process restart + recovery
constexpr Tick kEnd = 40 * kSecond;
constexpr Tick kReconfigAt = 20 * kSecond;

struct Outcome {
  int downtime_seconds = 0;
  uint64_t completed = 0;
  double steady = 0;
};

Outcome measure(Cluster& cluster, LoadClient* client, const WindowedCounter& series) {
  Outcome out;
  out.steady = series.average_rate(5 * kSecond, 15 * kSecond);
  for (Tick t = kReconfigAt; t < kEnd; t += kSecond) {
    const auto idx = static_cast<size_t>(t / kSecond);
    const double rate = idx < series.size() ? series.rate_at(idx) : 0.0;
    if (rate < out.steady * 0.1) ++out.downtime_seconds;
  }
  out.completed = client->completed();
  (void)cluster;
  return out;
}

Outcome run_elastic() {
  auto options = bench::broadcast_options();
  Cluster cluster(options);
  const StreamId s1 = cluster.add_stream();

  elastic::Replica::Config rcfg;
  rcfg.group = 1;
  rcfg.initial_streams = {s1};
  rcfg.params = options.params;
  bench::tune_broadcast_replica(rcfg);
  auto* r1 = cluster.add_replica(rcfg);
  auto* r2 = cluster.add_replica(rcfg);
  (void)r2;

  StreamId active = s1;
  LoadClient::Config cfg;
  cfg.threads = 30;
  cfg.payload_bytes = 32 * 1024;
  cfg.think_time = 24 * kMillisecond;
  cfg.route = [&active] { return active; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();

  cluster.run_until(kReconfigAt - 5 * kSecond);
  const StreamId s2 = cluster.add_stream();
  cluster.controller().prepare(1, s2, s1);
  cluster.run_until(kReconfigAt);
  cluster.controller().subscribe(1, s2, s1);
  while (!r1->merger().subscribed_to(s2)) cluster.run_for(50 * kMillisecond);
  active = s2;
  cluster.run_for(options.params.delta_t);
  cluster.controller().unsubscribe(1, s1, s2);
  cluster.run_until(kEnd);
  return measure(cluster, client, r1->delivery_series());
}

Outcome run_static() {
  auto options = bench::broadcast_options();
  Cluster cluster(options);
  const StreamId s1 = cluster.add_stream();

  elastic::Replica::Config rcfg;
  rcfg.group = 1;
  rcfg.initial_streams = {s1};
  rcfg.params = options.params;
  bench::tune_broadcast_replica(rcfg);
  auto* r1 = cluster.add_replica(rcfg);
  auto* r2 = cluster.add_replica(rcfg);

  StreamId active = s1;
  LoadClient::Config cfg;
  cfg.threads = 30;
  cfg.payload_bytes = 32 * 1024;
  cfg.think_time = 24 * kMillisecond;
  cfg.route = [&active] { return active; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();

  cluster.run_until(kReconfigAt - 5 * kSecond);
  const StreamId s2 = cluster.add_stream();
  cluster.run_until(kReconfigAt);

  // Static subscriptions: stop everything, restart with the new set.
  r1->crash();
  r2->crash();
  active = s2;
  // New replica processes come up on the new stream after the restart
  // window (process restart + log recovery; no Elastic protocol).
  WindowedCounter* new_series = nullptr;
  elastic::Replica::Config rcfg2 = rcfg;
  rcfg2.initial_streams = {s2};
  cluster.sim().schedule_after(kRestartWindow, [&cluster, rcfg2, &new_series] {
    auto* n1 = cluster.add_replica(rcfg2);
    cluster.add_replica(rcfg2);
    new_series = const_cast<WindowedCounter*>(&n1->delivery_series());
  });
  cluster.run_until(kEnd);

  // Stitch the two delivery series for downtime accounting.
  WindowedCounter stitched(kSecond);
  const auto& before = r1->delivery_series();
  for (size_t i = 0; i < before.size(); ++i) {
    if (before.count_at(i) > 0) {
      stitched.add(static_cast<Tick>(i) * kSecond, before.count_at(i));
    }
  }
  if (new_series != nullptr) {
    for (size_t i = 0; i < new_series->size(); ++i) {
      if (new_series->count_at(i) > 0) {
        stitched.add(static_cast<Tick>(i) * kSecond, new_series->count_at(i));
      }
    }
  }
  return measure(cluster, client, stitched);
}

}  // namespace

int main() {
  bench::bench_logging();
  std::printf("Ablation — reconfiguring a running broadcast group: Elastic Paxos "
              "vs the stop-and-restart static baseline (30 threads, 32KB values)\n");

  const Outcome elastic = run_elastic();
  const Outcome is_static = run_static();

  print_header("Results");
  std::printf("%-26s %14s %14s\n", "", "elastic", "static");
  std::printf("%-26s %12d s %12d s\n", "downtime (rate < 10%)", elastic.downtime_seconds,
              is_static.downtime_seconds);
  std::printf("%-26s %14llu %14llu\n", "operations completed",
              static_cast<unsigned long long>(elastic.completed),
              static_cast<unsigned long long>(is_static.completed));
  std::printf("%-26s %10.0f op/s %10.0f op/s\n", "steady rate", elastic.steady,
              is_static.steady);

  print_header("Paper checks");
  char measured[160];
  std::snprintf(measured, sizeof(measured), "elastic %d s vs static %d s downtime",
                elastic.downtime_seconds, is_static.downtime_seconds);
  paper_check("ablation.static-halts",
              "static reconfiguration halts the system; Elastic Paxos does not",
              elastic.downtime_seconds == 0 && is_static.downtime_seconds >= 4, measured);
  std::snprintf(measured, sizeof(measured), "%llu vs %llu ops",
                static_cast<unsigned long long>(elastic.completed),
                static_cast<unsigned long long>(is_static.completed));
  paper_check("ablation.more-work-done",
              "elastic reconfiguration completes strictly more client work",
              elastic.completed > is_static.completed, measured);
  return 0;
}
