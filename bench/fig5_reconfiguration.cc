// Figure 5 — State machine reconfiguration under full load (paper §VII-E).
//
// "We start the experiment with a client VM (60 threads) that sends
// 32 kbyte values to two replica VMs. These two replicas subscribe to the
// first stream which contains 3 acceptor VMs. After 40 seconds, we inform
// the replicas that we will add a second stream (with a prepare_msg
// request). After 45 seconds we let the replicas subscribe to the new
// stream containing 3 different acceptor VMs. Right after the subscribe
// message we submit a unsubscribe message to the original stream."
//
// Paper result: reconfiguration under ~550 Mbps of load introduces no
// overhead; 95th percentile latency 2.7 ms.
#include <cstdio>

#include "bench/bench_common.h"
#include "harness/telemetry_flags.h"
#include "harness/trace_flags.h"

using namespace epx;            // NOLINT(google-build-using-namespace)
using namespace epx::harness;   // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  bench::bench_logging();
  bench::parse_threads(argc, argv);
  const TraceFlags trace_flags = TraceFlags::parse(argc, argv);
  const TelemetryFlags telemetry_flags = TelemetryFlags::parse(argc, argv);
  auto options = bench::broadcast_options();
  // --durable reruns the figure with write-ahead acceptors;
  // --durable-restart additionally power-fails the active ring at t=60s
  // and measures how long delivery takes to resume via journal replay
  // plus coordinator retries. Default stays diskless, byte-identical.
  bool durable = bench::parse_durable(argc, argv, options);
  bool durable_restart = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--durable-restart") == 0) durable_restart = true;
  }
  if (durable_restart && !durable) {
    durable = true;
    options.storage = paxos::StoragePolicy::kDurable;
  }
  telemetry_flags.apply(options);
  Cluster cluster(options);
  trace_flags.enable(cluster.sim());

  const StreamId s1 = cluster.add_stream();

  elastic::Replica::Config rcfg;
  rcfg.group = 1;
  rcfg.initial_streams = {s1};
  rcfg.params = options.params;
  bench::tune_broadcast_replica(rcfg);
  auto* r1 = cluster.add_replica(rcfg);
  auto* r2 = cluster.add_replica(rcfg);
  (void)r2;

  // Per-stream delivery and byte series at replica 1 come straight from
  // the metrics registry (`replica.delivered{node=,stream=}` and
  // `replica.bytes{node=}`).
  const obs::MetricsRegistry& metrics = cluster.sim().metrics();
  auto stream_metric = [&](StreamId s) {
    return obs::metric_key("replica.delivered",
                           {{"node", r1->name()}, {"stream", std::to_string(s)}});
  };

  // Clients switch streams when told; route is re-evaluated per send.
  StreamId active_stream = s1;
  LoadClient::Config cfg;
  cfg.threads = 60;  // paper: 60 client threads
  cfg.payload_bytes = 32 * 1024;
  // ~24 ms think time puts 60 threads at ~2.1k ops/s (~550 Mbps of 32 KB
  // values) — the paper's "full system load" operating point — while
  // keeping queues short enough for single-digit-ms latency.
  cfg.think_time = 24 * kMillisecond;
  cfg.route = [&active_stream] { return active_stream; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();

  std::printf("Fig. 5 — Reconfiguration under full load: replacing the acceptor set "
              "by subscribing to a new stream and unsubscribing from the old one "
              "(32KB values, 60 threads, prepare hint enabled)\n");

  // t=40s: provision the new stream (3 fresh acceptor VMs) and send the
  // prepare hint so replicas recover it in the background.
  cluster.run_until(40 * kSecond);
  const StreamId s2 = cluster.add_stream();
  cluster.controller().prepare(1, s2, s1);

  // t=45s: subscribe to the new stream; right after, unsubscribe the old.
  cluster.run_until(45 * kSecond);
  cluster.controller().subscribe(1, s2, s1);
  while (!(r1->merger().subscribed_to(s2) && r2->merger().subscribed_to(s2))) {
    cluster.run_for(50 * kMillisecond);
  }
  active_stream = s2;  // clients move to the new stream
  // Let the last stream-1 in-flight commands be ordered below the
  // unsubscribe cutoff (commands ordered in the old stream past the
  // cutoff position are discarded by design — Fig. 2 semantics).
  cluster.run_for(options.params.delta_t);
  cluster.controller().unsubscribe(1, s1, s2);

  const Tick end = 80 * kSecond;
  // Full-ring power loss on the active stream: every acceptor loses its
  // volatile state at once, so only the write-ahead journals (replayed
  // on restart) and the coordinator's retry loop bring delivery back.
  Tick outage_start = 0, first_delivery_after = 0;
  if (durable_restart) {
    cluster.run_until(60 * kSecond);
    outage_start = cluster.now();
    for (auto* a : cluster.acceptors(s2)) a->crash();
    cluster.run_for(250 * kMillisecond);  // power restored
    for (auto* a : cluster.acceptors(s2)) a->restart();
    const obs::Counter* delivered = metrics.find_counter(
        obs::metric_key("replica.delivered", {{"node", r1->name()}}));
    const uint64_t before_total = delivered != nullptr ? delivered->total() : 0;
    while (cluster.now() < end &&
           (delivered == nullptr || delivered->total() == before_total)) {
      cluster.run_for(10 * kMillisecond);
    }
    first_delivery_after = cluster.now();
  }
  cluster.run_until(end);

  const std::string bytes_metric =
      obs::metric_key("replica.bytes", {{"node", r1->name()}});
  std::vector<RateColumn> columns;
  columns.push_back(
      {"total", obs::metric_key("replica.delivered", {{"node", r1->name()}}), 1.0});
  columns.push_back({"stream1", stream_metric(s1), 1.0});
  if (metrics.find_counter(stream_metric(s2)) != nullptr) {
    columns.push_back({"stream2", stream_metric(s2), 1.0});
  }
  columns.push_back({"Mbps", bytes_metric, 8.0 / 1e6});
  print_rate_table(metrics, "Throughput at replica 1 (ops/s, Mbps)", columns, 0, end);

  print_latency_table(
      metrics, "Client latency p95 (ms)",
      {{"p95(ms)", obs::metric_key("client.latency", {{"node", client->name()}}), 0.95}},
      0, end);

  print_header("Summary");
  std::printf("overall latency: %s\n", client->latency().summary().c_str());
  std::printf("client retries: %llu\n",
              static_cast<unsigned long long>(client->retries()));

  // Paper checks: steady throughput through the reconfiguration window
  // and a single-digit-ms p95.
  const double before = r1->delivery_series().average_rate(30 * kSecond, 40 * kSecond);
  const double during = r1->delivery_series().average_rate(44 * kSecond, 48 * kSecond);
  const double after = r1->delivery_series().average_rate(50 * kSecond, 60 * kSecond);
  double min_window = 1e18;
  for (Tick t = 41 * kSecond; t < 50 * kSecond; t += kSecond) {
    const auto idx = static_cast<size_t>(t / kSecond);
    if (idx < r1->delivery_series().size()) {
      min_window = std::min(min_window, r1->delivery_series().rate_at(idx));
    }
  }
  const obs::Counter* bytes_counter = metrics.find_counter(bytes_metric);
  const double mbps =
      (bytes_counter != nullptr
           ? bytes_counter->series().average_rate(30 * kSecond, 40 * kSecond)
           : 0.0) *
      8.0 / 1e6;
  char measured[200];
  std::snprintf(measured, sizeof(measured),
                "before %.0f / during %.0f / after %.0f ops/s; load %.0f Mbps; worst "
                "reconfig window %.0f ops/s",
                before, during, after, mbps, min_window);
  print_header("Paper checks");
  paper_check("fig5.no-overhead",
              "no throughput dip during reconfiguration (prepare hint)",
              during > before * 0.9 && min_window > before * 0.8, measured);
  paper_check("fig5.load", "full load ~550 Mbps of 32KB values", mbps > 350 && mbps < 800,
              (std::to_string(mbps) + " Mbps").c_str());
  const double p95_ms = to_millis(client->latency().p95());
  paper_check("fig5.latency", "95th percentile latency 2.7 ms",
              p95_ms > 0.5 && p95_ms < 10.0, (std::to_string(p95_ms) + " ms").c_str());
  if (durable_restart) {
    const double pre_crash =
        r1->delivery_series().average_rate(50 * kSecond, 60 * kSecond);
    const double post_recovery =
        r1->delivery_series().average_rate(65 * kSecond, 75 * kSecond);
    const double gap_ms = to_millis(first_delivery_after - outage_start);
    const uint64_t replays = bench::sum_counters(metrics, "acceptor.replays");
    char recovery[200];
    std::snprintf(recovery, sizeof(recovery),
                  "outage->first delivery %.0f ms (250 ms powered off); rate %.0f -> "
                  "%.0f ops/s; %llu journal replays",
                  gap_ms, pre_crash, post_recovery,
                  static_cast<unsigned long long>(replays));
    paper_check("fig5.durable-restart",
                "full-ring power loss recovers via journal replay",
                replays == cluster.acceptors(s2).size() &&
                    first_delivery_after < outage_start + 5 * kSecond &&
                    post_recovery > pre_crash * 0.8,
                recovery);
  }
  if (durable) bench::print_durability_summary(metrics);
  trace_flags.finish(cluster.sim());
  telemetry_flags.finish(cluster);
  return 0;
}
