// Ablation A — the prepare_msg recovery hint (paper §V-C).
//
// The paper contrasts Fig. 3 ("The most visible impact is right after the
// subscribe message. This is due to the fact that we intentionally do not
// use the prepare_msg request") with Fig. 5 ("Since the replicas received
// a prepare_msg, they can start up and recover the new stream in the
// background ... reconfiguration introduces no overhead").
//
// This bench isolates that effect: identical scenarios — a stream with a
// multi-second backlog is subscribed under load — with and without the
// hint, comparing the merged-delivery stall and the per-second throughput
// dip around the subscription.
#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

using namespace epx;            // NOLINT(google-build-using-namespace)
using namespace epx::harness;   // NOLINT(google-build-using-namespace)

namespace {

struct Outcome {
  Tick max_gap = 0;         ///< longest pause in merged delivery
  double dip_rate = 1e18;   ///< worst 1s window around the subscription
  double steady_rate = 0;   ///< pre-subscription average
  Tick completion = 0;      ///< time from subscribe to merge completion
};

Outcome run_scenario(bool use_prepare) {
  auto options = bench::broadcast_options();
  Cluster cluster(options);
  const StreamId s1 = cluster.add_stream();
  const StreamId s2 = cluster.add_stream();

  elastic::Replica::Config rcfg;
  rcfg.group = 1;
  rcfg.initial_streams = {s1};
  rcfg.params = options.params;
  bench::tune_broadcast_replica(rcfg);
  auto* r1 = cluster.add_replica(rcfg);

  Tick last_delivery = 0;
  Tick max_gap = 0;
  bool tracking = false;
  r1->set_delivery_listener([&](net::NodeId, const paxos::Command&, paxos::StreamId) {
    const Tick t = cluster.now();
    if (tracking && last_delivery > 0) max_gap = std::max(max_gap, t - last_delivery);
    last_delivery = t;
  });

  // Load on the subscribed stream...
  LoadClient::Config cfg1;
  cfg1.threads = 10;
  cfg1.payload_bytes = 32 * 1024;
  cfg1.think_time = 24 * kMillisecond;
  cfg1.route = [s1] { return s1; };
  cluster.spawn<LoadClient>("client1", &cluster.directory(), cfg1)->start();
  // ...and on the not-yet-subscribed stream, building the backlog the
  // new learner must recover.
  LoadClient::Config cfg2 = cfg1;
  cfg2.route = [s2] { return s2; };
  cfg2.retry_timeout = 3600 * kSecond;  // fire-and-forget backlog
  cluster.spawn<LoadClient>("client2", &cluster.directory(), cfg2)->start();

  cluster.run_until(10 * kSecond);
  if (use_prepare) {
    cluster.controller().prepare(1, s2, s1);
    cluster.run_until(14 * kSecond);  // background catch-up window
  }
  cluster.run_until(15 * kSecond);
  tracking = true;
  const Tick subscribe_at = cluster.now();
  cluster.controller().subscribe(1, s2, s1);
  while (!r1->merger().subscribed_to(s2) && cluster.now() < 40 * kSecond) {
    cluster.run_for(10 * kMillisecond);
  }
  const Tick completed_at = cluster.now();
  cluster.run_until(25 * kSecond);
  tracking = false;

  Outcome out;
  out.max_gap = max_gap;
  out.completion = completed_at - subscribe_at;
  out.steady_rate = r1->delivery_series().average_rate(5 * kSecond, 14 * kSecond);
  for (Tick t = 15 * kSecond; t < 18 * kSecond; t += kSecond) {
    const auto idx = static_cast<size_t>(t / kSecond);
    if (idx < r1->delivery_series().size()) {
      out.dip_rate = std::min(out.dip_rate, r1->delivery_series().rate_at(idx));
    }
  }
  return out;
}

}  // namespace

int main() {
  bench::bench_logging();
  std::printf("Ablation — subscribe with vs without the prepare_msg hint "
              "(5s backlog on the new stream, 32KB values)\n");

  const Outcome without = run_scenario(false);
  const Outcome with = run_scenario(true);

  print_header("Results");
  std::printf("%-28s %16s %16s\n", "", "without prepare", "with prepare");
  std::printf("%-28s %13.1f ms %13.1f ms\n", "max delivery stall",
              to_millis(without.max_gap), to_millis(with.max_gap));
  std::printf("%-28s %13.1f ms %13.1f ms\n", "subscription completion",
              to_millis(without.completion), to_millis(with.completion));
  std::printf("%-28s %10.0f ops/s %10.0f ops/s\n", "worst window after sub",
              without.dip_rate, with.dip_rate);
  std::printf("%-28s %10.0f ops/s %10.0f ops/s\n", "steady rate before sub",
              without.steady_rate, with.steady_rate);

  print_header("Paper checks");
  char measured[160];
  std::snprintf(measured, sizeof(measured), "stall %.1f ms vs %.1f ms",
                to_millis(without.max_gap), to_millis(with.max_gap));
  paper_check("ablation.prepare-stall",
              "without the hint, delivery stalls while the backlog is recovered "
              "(Fig. 3 spike); with it the stall (nearly) disappears (Fig. 5)",
              without.max_gap > 2 * with.max_gap &&
                  with.max_gap < 500 * kMillisecond,
              measured);
  std::snprintf(measured, sizeof(measured), "dip to %.0f vs %.0f ops/s (steady %.0f)",
                without.dip_rate, with.dip_rate, with.steady_rate);
  paper_check("ablation.prepare-dip",
              "prepared subscription keeps throughput near steady state",
              with.dip_rate > without.dip_rate, measured);
  return 0;
}
