// Micro benchmarks (host-hardware throughput of the library's hot
// components): wire codec, histogram, stream queue, deterministic merge,
// partitioner, RNG, event engine, and whole-cluster simulation rate.
//
// `--json[=path]` additionally writes machine-readable results to
// BENCH_micro.json (benchmark name -> ns/op and, where meaningful,
// events/sec) for EXPERIMENTS.md and regression tracking.
#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "elastic/elastic_merger.h"
#include "harness/cluster.h"
#include "harness/load_client.h"
#include "kvstore/partition_map.h"
#include "multicast/static_merger.h"
#include "multicast/stream_queue.h"
#include "net/message.h"
#include "paxos/acceptor_store.h"
#include "paxos/messages.h"
#include "paxos/slot_log.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"

namespace epx {
namespace {

void BM_CommandEncode(benchmark::State& state) {
  paxos::Command cmd;
  cmd.id = 42;
  cmd.client = 7;
  cmd.payload = std::make_shared<const std::string>(std::string(state.range(0), 'x'));
  for (auto _ : state) {
    net::Writer w;
    cmd.encode(w);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(cmd.encoded_size()));
}
BENCHMARK(BM_CommandEncode)->Arg(64)->Arg(1024)->Arg(32 * 1024);

void BM_AcceptRoundTrip(benchmark::State& state) {
  paxos::register_paxos_messages();
  paxos::AcceptMsg msg;
  msg.stream = 3;
  msg.ballot = {1, 9};
  msg.instance = 77;
  paxos::Proposal batch;
  for (int i = 0; i < 8; ++i) {
    paxos::Command c;
    c.id = static_cast<uint64_t>(i);
    c.payload = std::make_shared<const std::string>(std::string(1024, 'v'));
    batch.commands.push_back(std::move(c));
  }
  msg.value = paxos::make_proposal(std::move(batch));
  auto& codec = net::MessageCodec::instance();
  for (auto _ : state) {
    auto bytes = codec.encode(msg);
    auto decoded = codec.decode({reinterpret_cast<const char*>(bytes.data()), bytes.size()});
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_AcceptRoundTrip);

/// Acceptor-log steady state: a pipeline window of live instances slides
/// forward — insert at the head, probe a recent instance, trim the tail.
/// Templated over the container so the std::map baseline runs the exact
/// same workload as SlotLog.
struct BenchLogEntry {
  uint64_t ballot = 0;
  paxos::ProposalPtr value;
  bool decided = false;
};

constexpr paxos::InstanceId kLogWindow = 128;

void BM_SlotLog(benchmark::State& state) {
  paxos::SlotLog<BenchLogEntry> log;
  paxos::InstanceId next = 0;
  for (auto _ : state) {
    BenchLogEntry& e = log[next];
    e.ballot = next;
    e.decided = true;
    benchmark::DoNotOptimize(log.find(next - (next % (kLogWindow / 2))));
    ++next;
    if (next > kLogWindow) log.trim_below(next - kLogWindow);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SlotLog);

void BM_SlotLogStdMapBaseline(benchmark::State& state) {
  std::map<paxos::InstanceId, BenchLogEntry> log;
  paxos::InstanceId next = 0;
  for (auto _ : state) {
    BenchLogEntry& e = log[next];
    e.ballot = next;
    e.decided = true;
    benchmark::DoNotOptimize(log.find(next - (next % (kLogWindow / 2))));
    ++next;
    if (next > kLogWindow) {
      const paxos::InstanceId floor = next - kLogWindow;
      while (!log.empty() && log.begin()->first < floor) log.erase(log.begin());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SlotLogStdMapBaseline);

/// Decision fan-out from the quorum-completing acceptor: one DecisionMsg
/// per learner, all sharing the stored proposal (a refcount bump each
/// instead of an 8-command batch copy). Items = messages built.
void BM_DecisionFanout(benchmark::State& state) {
  const int learners = static_cast<int>(state.range(0));
  paxos::Proposal p;
  for (int i = 0; i < 8; ++i) {
    paxos::Command c;
    c.id = static_cast<uint64_t>(i);
    c.payload = std::make_shared<const std::string>(std::string(1024, 'v'));
    p.commands.push_back(std::move(c));
  }
  const paxos::ProposalPtr value = paxos::make_proposal(std::move(p));
  for (auto _ : state) {
    for (int l = 0; l < learners; ++l) {
      auto msg = net::make_message<paxos::DecisionMsg>(3, 77, value);
      benchmark::DoNotOptimize(msg);
    }
  }
  state.SetItemsProcessed(state.iterations() * learners);
}
BENCHMARK(BM_DecisionFanout)->Arg(4)->Arg(16);

/// Write-ahead journal appends under a group-commit window sweep (arg =
/// window in microseconds; 0 = fsync per record). Bursts of 64 accept
/// records arrive at one tick, then the device drains — the acceptor's
/// steady state under a loaded ring. ns/op is the host cost of one
/// journaled record including its share of flush bookkeeping and
/// durability callbacks; appends_per_fsync shows the batching the
/// window buys.
void BM_AcceptorWalAppend(benchmark::State& state) {
  log::set_level(log::Level::kOff);
  harness::Cluster cluster;
  struct Host : sim::Process {
    using Process::Process;
    void on_message(net::NodeId, const net::MessagePtr&) override {}
  };
  auto* host = cluster.spawn<Host>("wal_host");
  sim::DeviceParams dev;
  dev.commit_window = static_cast<Tick>(state.range(0)) * kMicrosecond;
  paxos::WalAcceptorStore store(host, dev, host->name());

  paxos::Proposal p;
  paxos::Command c;
  c.id = 1;
  c.payload = std::make_shared<const std::string>(std::string(1024, 'v'));
  p.commands.push_back(std::move(c));
  const paxos::ProposalPtr value = paxos::make_proposal(std::move(p));

  paxos::InstanceId instance = 0;
  for (auto _ : state) {
    store.append_accept(instance, {1, 1}, value, true);
    if ((++instance & 63) == 0) cluster.run_for(kMillisecond);
  }
  cluster.run_for(kSecond);  // drain the tail so every record completes
  state.SetItemsProcessed(static_cast<int64_t>(instance));
  const uint64_t fsyncs = store.device().fsyncs();
  state.counters["appends_per_fsync"] = benchmark::Counter(
      fsyncs == 0 ? 0.0
                  : static_cast<double>(instance) / static_cast<double>(fsyncs));
}
BENCHMARK(BM_AcceptorWalAppend)->Arg(0)->Arg(100)->Arg(1000);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.record(static_cast<Tick>(rng.uniform(10 * kSecond)));
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.record(static_cast<Tick>(rng.uniform(kSecond)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.p95());
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_StreamQueuePushConsume(benchmark::State& state) {
  multicast::StreamQueue q(1);
  paxos::SlotIndex slot = 0;
  paxos::Command cmd;
  cmd.payload_size = 64;
  for (auto _ : state) {
    paxos::Proposal p;
    p.first_slot = slot;
    p.commands.push_back(cmd);
    slot += 1;
    q.push_proposal(std::move(p));  // freeze once, share — the learner path
    q.consume();
  }
}
BENCHMARK(BM_StreamQueuePushConsume);

void BM_MergerPump(benchmark::State& state) {
  const int num_streams = static_cast<int>(state.range(0));
  uint64_t delivered = 0;
  elastic::ElasticMerger merger(
      1, {[](paxos::StreamId) {}, [](paxos::StreamId) {},
          [&](const paxos::Command&, paxos::StreamId) { ++delivered; },
          [](const paxos::Command&) {}});
  std::vector<paxos::StreamId> streams;
  for (int s = 1; s <= num_streams; ++s) streams.push_back(static_cast<uint32_t>(s));
  merger.bootstrap(streams);
  std::vector<paxos::SlotIndex> pos(static_cast<size_t>(num_streams), 0);
  paxos::Command cmd;
  cmd.payload_size = 64;
  uint64_t id = 0;
  std::vector<paxos::Proposal> round;
  for (auto _ : state) {
    round.clear();
    round.reserve(static_cast<size_t>(num_streams));
    for (int s = 0; s < num_streams; ++s) {
      paxos::Proposal p;
      p.first_slot = pos[static_cast<size_t>(s)]++;
      cmd.id = ++id;
      p.commands.push_back(cmd);
      round.push_back(std::move(p));
    }
    // One frozen block per round instead of one freeze per proposal —
    // the bulk feed path (see paxos::freeze_batch).
    auto frozen = paxos::freeze_batch(std::move(round));
    for (int s = 0; s < num_streams; ++s) {
      merger.queue(streams[static_cast<size_t>(s)])
          .push_proposal(frozen[static_cast<size_t>(s)]);
    }
    merger.pump();
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
}
BENCHMARK(BM_MergerPump)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// Per-proposal-freeze baseline for BM_MergerPump: identical feed and
/// merge work, but each proposal is frozen into its own shared block
/// (the pre-freeze_batch path). Kept, like BM_SlotLogStdMapBaseline,
/// so the amortization stays measurable instead of anecdotal.
void BM_MergerPumpPerProposalFreeze(benchmark::State& state) {
  const int num_streams = static_cast<int>(state.range(0));
  uint64_t delivered = 0;
  elastic::ElasticMerger merger(
      1, {[](paxos::StreamId) {}, [](paxos::StreamId) {},
          [&](const paxos::Command&, paxos::StreamId) { ++delivered; },
          [](const paxos::Command&) {}});
  std::vector<paxos::StreamId> streams;
  for (int s = 1; s <= num_streams; ++s) streams.push_back(static_cast<uint32_t>(s));
  merger.bootstrap(streams);
  std::vector<paxos::SlotIndex> pos(static_cast<size_t>(num_streams), 0);
  paxos::Command cmd;
  cmd.payload_size = 64;
  uint64_t id = 0;
  for (auto _ : state) {
    for (int s = 0; s < num_streams; ++s) {
      paxos::Proposal p;
      p.first_slot = pos[static_cast<size_t>(s)]++;
      cmd.id = ++id;
      p.commands.push_back(cmd);
      merger.queue(streams[static_cast<size_t>(s)]).push_proposal(std::move(p));
    }
    merger.pump();
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
}
BENCHMARK(BM_MergerPumpPerProposalFreeze)->Arg(4);

void BM_KeyHash(benchmark::State& state) {
  std::string key = "key0000012345";
  for (auto _ : state) {
    key[12] = static_cast<char>('0' + (state.iterations() % 10));
    benchmark::DoNotOptimize(key_hash(key));
  }
}
BENCHMARK(BM_KeyHash);

void BM_PartitionLookup(benchmark::State& state) {
  std::vector<kv::PartitionEntry> entries;
  const int n = static_cast<int>(state.range(0));
  const uint64_t span = ~0ULL / static_cast<uint64_t>(n);
  for (int i = 0; i < n; ++i) {
    kv::PartitionEntry e;
    e.partition_id = static_cast<uint32_t>(i + 1);
    e.hash_lo = static_cast<uint64_t>(i) * span + (i == 0 ? 0 : 1);
    e.hash_hi = (i + 1 == n) ? ~0ULL : static_cast<uint64_t>(i + 1) * span;
    e.stream = static_cast<uint32_t>(i + 1);
    entries.push_back(e);
  }
  kv::PartitionMap map(entries);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.lookup_hash(rng.next()));
  }
}
BENCHMARK(BM_PartitionLookup)->Arg(2)->Arg(16)->Arg(64);

void BM_Rng(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Rng);

void BM_EventQueue(benchmark::State& state) {
  sim::Simulation sim;
  int sink = 0;
  for (auto _ : state) {
    sim.schedule_after(1, [&sink] { ++sink; });
    sim.step();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueue);

/// The pre-overhaul engine, kept here as the reference point for the
/// mixed-horizon comparison: one heap-allocated std::function per event,
/// ordered by a binary heap over (time, insertion seq).
class LegacyEventQueue {
 public:
  template <typename F>
  void schedule(Tick t, F&& fn) {
    heap_.push(Ev{t, seq_++, std::function<void()>(std::forward<F>(fn))});
  }
  bool empty() const { return heap_.empty(); }
  Tick next_time() const { return heap_.top().time; }
  void pop_and_run() {
    std::function<void()> fn = std::move(const_cast<Ev&>(heap_.top()).fn);
    heap_.pop();
    fn();
  }

 private:
  struct Ev {
    Tick time;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Ev& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> heap_;
  uint64_t seq_ = 0;
};

/// Mixed-horizon steady-state load matching what a running cluster
/// produces: mostly short timers (RPC hops, queue drains), some in the
/// tens-of-microseconds-to-milliseconds band (batching, retries), a tail
/// of far-future timers (load ramps, failure detection). The queue holds
/// a standing population of 1024 events; every fired event schedules a
/// successor at a fresh mixed horizon, so each iteration is one full
/// schedule+fire cycle through the engine. The callback captures 32
/// bytes — the size of Network::send's delivery lambda, the simulator's
/// dominant event — which exceeds libstdc++'s std::function inline
/// buffer, exactly as in the real send path.
template <typename Engine>
void mixed_horizon_events(benchmark::State& state) {
  Engine q;
  Rng rng(42);
  Tick now = 0;
  uint64_t fired = 0;
  const auto horizon = [&rng]() -> Tick {
    const uint64_t bucket = rng.uniform(100);
    if (bucket < 60) return static_cast<Tick>(rng.uniform(4096));
    if (bucket < 90) return static_cast<Tick>(rng.uniform(30 * kMillisecond));
    return static_cast<Tick>(rng.uniform(5 * kSecond));
  };
  uint64_t a = 1, b = 2, c = 3;  // pads the capture to delivery-lambda size
  const auto schedule_one = [&] {
    q.schedule(now + horizon(), [&fired, a, b, c] { fired += a + b + c; });
  };
  constexpr int kPopulation = 1024;
  for (int i = 0; i < kPopulation; ++i) schedule_one();
  for (auto _ : state) {
    now = q.next_time();
    q.pop_and_run();
    schedule_one();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_EventEngineMixedHorizon(benchmark::State& state) {
  mixed_horizon_events<sim::EventQueue>(state);
}
BENCHMARK(BM_EventEngineMixedHorizon);

void BM_EventEngineMixedHorizonLegacy(benchmark::State& state) {
  mixed_horizon_events<LegacyEventQueue>(state);
}
BENCHMARK(BM_EventEngineMixedHorizonLegacy);

/// Timer-wheel stress: every event lands in the wheel window or beyond
/// it, so draining exercises slot scans, bitmap skips and far-heap
/// rebases rather than the near heap.
void BM_TimerWheelSpread(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(7);
  Tick now = 0;
  uint64_t sink = 0;
  constexpr int kBatch = 1024;
  const Tick span = static_cast<Tick>(state.range(0)) * kMillisecond;
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      q.schedule(now + 1 + static_cast<Tick>(rng.uniform(static_cast<uint64_t>(span))),
                 [&sink] { ++sink; });
    }
    while (!q.empty()) {
      now = q.next_time();
      q.pop_and_run();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_TimerWheelSpread)->Arg(30)->Arg(500);

/// Bulk skip-run consumption: every stream heads a skip run (the steady
/// state skip pacing creates on idle streams) followed by one value.
/// Args are (streams, skip run length); items/sec counts consumed slots.
void BM_BulkSkipMerge(benchmark::State& state) {
  const int num_streams = static_cast<int>(state.range(0));
  const uint64_t run = static_cast<uint64_t>(state.range(1));
  uint64_t delivered = 0;
  std::vector<paxos::StreamId> streams;
  for (int s = 1; s <= num_streams; ++s) streams.push_back(static_cast<uint32_t>(s));
  multicast::StaticMerger merger(streams,
                                 [&](const paxos::Command&, paxos::StreamId) { ++delivered; });
  paxos::SlotIndex pos = 0;
  paxos::Command cmd;
  cmd.payload_size = 64;
  uint64_t id = 0;
  for (auto _ : state) {
    for (paxos::StreamId s : streams) {
      paxos::Proposal skip;
      skip.first_slot = pos;
      skip.skip_slots = run;
      merger.queue(s).push_proposal(std::move(skip));
      paxos::Proposal value;
      value.first_slot = pos + run;
      cmd.id = ++id;
      value.commands.push_back(cmd);
      merger.queue(s).push_proposal(std::move(value));
    }
    pos += run + 1;
    merger.pump();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(num_streams) *
                          static_cast<int64_t>(run + 1));
}
BENCHMARK(BM_BulkSkipMerge)->Args({4, 256})->Args({8, 1024});

/// Whole-cluster rate: one virtual second of a loaded 1-stream cluster
/// per iteration; items = delivered commands.
void BM_SimulatedClusterSecond(benchmark::State& state) {
  log::set_level(log::Level::kOff);
  harness::Cluster cluster;
  const auto s1 = cluster.add_stream();
  auto* r1 = cluster.add_replica(1, {s1});
  harness::LoadClient::Config cfg;
  cfg.threads = 8;
  cfg.payload_bytes = 1024;
  cfg.route = [s1] { return s1; };
  auto* client =
      cluster.spawn<harness::LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  uint64_t last = 0;
  for (auto _ : state) {
    cluster.run_for(kSecond);
    benchmark::DoNotOptimize(r1->delivered());
  }
  last = r1->delivered();
  state.SetItemsProcessed(static_cast<int64_t>(last));
}
BENCHMARK(BM_SimulatedClusterSecond);

/// The telemetry A/B twin of BM_SimulatedClusterSecond: identical
/// topology and load, scrape plane on at the default 100 ms interval.
/// perf-smoke gates the pair — telemetry must cost at most a few percent
/// of real time over the disabled run (compare.py --ab).
void BM_SimulatedClusterSecondTelemetry(benchmark::State& state) {
  log::set_level(log::Level::kOff);
  harness::ClusterOptions options;
  options.telemetry.enabled = true;
  harness::Cluster cluster(options);
  const auto s1 = cluster.add_stream();
  auto* r1 = cluster.add_replica(1, {s1});
  harness::LoadClient::Config cfg;
  cfg.threads = 8;
  cfg.payload_bytes = 1024;
  cfg.route = [s1] { return s1; };
  auto* client =
      cluster.spawn<harness::LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  for (auto _ : state) {
    cluster.run_for(kSecond);
    benchmark::DoNotOptimize(r1->delivered());
  }
  state.SetItemsProcessed(static_cast<int64_t>(r1->delivered()));
}
BENCHMARK(BM_SimulatedClusterSecondTelemetry);

/// Thread-scaling series: one virtual second of a loaded EIGHT-ring
/// cluster per iteration, executed on T shards. The topology is fixed
/// across T so items/sec compares directly; T:1 is the serial engine
/// (the parallel engine's differential reference), T>1 the conservative
/// windowed engine. Reported as BM_SimulatedClusterSecond/T:N.
void BM_SimulatedClusterSecondThreads(benchmark::State& state) {
  log::set_level(log::Level::kOff);
  harness::ClusterOptions options;
  options.threads = static_cast<size_t>(state.range(0));
  harness::Cluster cluster(options);
  constexpr int kStreams = 8;
  std::vector<elastic::Replica*> replicas;
  for (int i = 0; i < kStreams; ++i) {
    const auto s = cluster.add_stream();
    replicas.push_back(
        cluster.add_replica(static_cast<paxos::GroupId>(i + 1), {s}));
    harness::LoadClient::Config cfg;
    cfg.threads = 8;
    cfg.payload_bytes = 1024;
    cfg.route = [s] { return s; };
    auto* client = cluster.spawn<harness::LoadClient>(
        "client" + std::to_string(i + 1), &cluster.directory(), cfg);
    client->start();
  }
  for (auto _ : state) {
    cluster.run_for(kSecond);
  }
  uint64_t delivered = 0;
  for (auto* r : replicas) delivered += r->delivered();
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
}
BENCHMARK(BM_SimulatedClusterSecondThreads)
    ->Name("BM_SimulatedClusterSecond")
    ->ArgName("T")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8);

/// Geo twin of the thread-scaling series: bench::geo_topology()'s four
/// WAN-separated regions on region-affine shards. Cross-shard lookahead
/// is 32-90 ms here, so the per-shard-pair matrix lets each shard batch
/// tens of virtual milliseconds per window — the workload the matrix
/// exists for. Reported as BM_SimulatedClusterSecondGeo/T:N; the name
/// substring-matches CI's perf-smoke --benchmark_filter, and the T:4
/// point is a gated key in tools/perf-smoke/compare.py.
void BM_SimulatedClusterSecondGeoThreads(benchmark::State& state) {
  log::set_level(log::Level::kOff);
  harness::ClusterOptions options;
  options.threads = static_cast<size_t>(state.range(0));
  options.topology = bench::geo_topology();
  harness::Cluster cluster(options);
  const std::vector<elastic::Replica*> replicas = bench::build_geo_cluster(cluster);
  for (auto _ : state) {
    cluster.run_for(kSecond);
  }
  uint64_t delivered = 0;
  for (auto* r : replicas) delivered += r->delivered();
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
}
BENCHMARK(BM_SimulatedClusterSecondGeoThreads)
    ->Name("BM_SimulatedClusterSecondGeo")
    ->ArgName("T")
    ->Arg(1)
    ->Arg(4);

}  // namespace

/// Console reporter that additionally writes one JSON object per
/// finished benchmark to a file:
///   {"name": ..., "ns_per_op": ..., "events_per_second": ...}
/// keyed for scripts (EXPERIMENTS.md, CI regression tracking) that do
/// not want to parse Google Benchmark's full console/JSON formats.
///
/// With --benchmark_repetitions the individual repetition runs are
/// folded into one extra "<name>_min" entry per benchmark (the fastest
/// repetition) alongside the library's "<name>_median"/"<name>_mean"
/// aggregates. Minimum-over-repetitions is the statistic the A/B
/// overhead gate reads: on a shared runner the distribution of run
/// times is noise stacked on top of a stable floor, so the minima of
/// two interleaved benchmarks compare the floors and shrug off the
/// noise that medians still carry.
class JsonDumpReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonDumpReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double ns = run.iterations == 0
                            ? 0.0
                            : run.real_accumulated_time * 1e9 /
                                  static_cast<double>(run.iterations);
      if (run.run_type == Run::RT_Iteration && run.repetitions > 1) {
        // One repetition of a repeated benchmark: fold into the _min
        // entry instead of emitting a duplicate per-rep key.
        const std::string name = run.benchmark_name() + "_min";
        auto [it, fresh] = min_index_.try_emplace(name, entries_.size());
        if (fresh) {
          entries_.push_back({name, ns, 0.0});
        } else if (ns < entries_[it->second].ns_per_op) {
          entries_[it->second].ns_per_op = ns;
        }
        continue;
      }
      Entry e;
      e.name = run.benchmark_name();
      e.ns_per_op = ns;
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) e.events_per_second = it->second.value;
      entries_.push_back(std::move(e));
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::ofstream out(path_);
    out << "{\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      out << "  \"" << e.name << "\": {\"ns_per_op\": " << e.ns_per_op;
      if (e.events_per_second > 0) {
        out << ", \"events_per_second\": " << e.events_per_second;
      }
      out << "}" << (i + 1 < entries_.size() ? "," : "") << "\n";
    }
    out << "}\n";
  }

 private:
  struct Entry {
    std::string name;
    double ns_per_op = 0.0;
    double events_per_second = 0.0;
  };
  std::string path_;
  std::vector<Entry> entries_;
  std::map<std::string, size_t> min_index_;  // _min name -> entries_ slot
};

}  // namespace epx

int main(int argc, char** argv) {
  // Peel off our own --json[=path] flag before Google Benchmark sees
  // (and rejects) it.
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = "BENCH_micro.json";
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  if (json_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
  } else {
    epx::JsonDumpReporter reporter(json_path);
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  return 0;
}
