// Micro benchmarks (host-hardware throughput of the library's hot
// components): wire codec, histogram, stream queue, deterministic merge,
// partitioner, RNG, event queue, and whole-cluster simulation rate.
#include <benchmark/benchmark.h>

#include "elastic/elastic_merger.h"
#include "harness/cluster.h"
#include "harness/load_client.h"
#include "kvstore/partition_map.h"
#include "multicast/stream_queue.h"
#include "net/message.h"
#include "paxos/messages.h"
#include "sim/simulation.h"
#include "util/hash.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"

namespace epx {
namespace {

void BM_CommandEncode(benchmark::State& state) {
  paxos::Command cmd;
  cmd.id = 42;
  cmd.client = 7;
  cmd.payload = std::make_shared<const std::string>(std::string(state.range(0), 'x'));
  for (auto _ : state) {
    net::Writer w;
    cmd.encode(w);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(cmd.encoded_size()));
}
BENCHMARK(BM_CommandEncode)->Arg(64)->Arg(1024)->Arg(32 * 1024);

void BM_AcceptRoundTrip(benchmark::State& state) {
  paxos::register_paxos_messages();
  paxos::AcceptMsg msg;
  msg.stream = 3;
  msg.ballot = {1, 9};
  msg.instance = 77;
  for (int i = 0; i < 8; ++i) {
    paxos::Command c;
    c.id = static_cast<uint64_t>(i);
    c.payload = std::make_shared<const std::string>(std::string(1024, 'v'));
    msg.value.commands.push_back(std::move(c));
  }
  auto& codec = net::MessageCodec::instance();
  for (auto _ : state) {
    auto bytes = codec.encode(msg);
    auto decoded = codec.decode({reinterpret_cast<const char*>(bytes.data()), bytes.size()});
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_AcceptRoundTrip);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.record(static_cast<Tick>(rng.uniform(10 * kSecond)));
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramQuantile(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.record(static_cast<Tick>(rng.uniform(kSecond)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.p95());
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_StreamQueuePushConsume(benchmark::State& state) {
  multicast::StreamQueue q(1);
  paxos::SlotIndex slot = 0;
  paxos::Command cmd;
  cmd.payload_size = 64;
  for (auto _ : state) {
    paxos::Proposal p;
    p.first_slot = slot;
    p.commands.push_back(cmd);
    slot += 1;
    q.push_proposal(p);
    q.consume();
  }
}
BENCHMARK(BM_StreamQueuePushConsume);

void BM_MergerPump(benchmark::State& state) {
  const int num_streams = static_cast<int>(state.range(0));
  uint64_t delivered = 0;
  elastic::ElasticMerger merger(
      1, {[](paxos::StreamId) {}, [](paxos::StreamId) {},
          [&](const paxos::Command&, paxos::StreamId) { ++delivered; },
          [](const paxos::Command&) {}});
  std::vector<paxos::StreamId> streams;
  for (int s = 1; s <= num_streams; ++s) streams.push_back(static_cast<uint32_t>(s));
  merger.bootstrap(streams);
  std::vector<paxos::SlotIndex> pos(static_cast<size_t>(num_streams), 0);
  paxos::Command cmd;
  cmd.payload_size = 64;
  uint64_t id = 0;
  for (auto _ : state) {
    for (int s = 0; s < num_streams; ++s) {
      paxos::Proposal p;
      p.first_slot = pos[static_cast<size_t>(s)]++;
      cmd.id = ++id;
      p.commands.push_back(cmd);
      merger.queue(streams[static_cast<size_t>(s)]).push_proposal(p);
    }
    merger.pump();
  }
  state.SetItemsProcessed(static_cast<int64_t>(delivered));
}
BENCHMARK(BM_MergerPump)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_KeyHash(benchmark::State& state) {
  std::string key = "key0000012345";
  for (auto _ : state) {
    key[12] = static_cast<char>('0' + (state.iterations() % 10));
    benchmark::DoNotOptimize(key_hash(key));
  }
}
BENCHMARK(BM_KeyHash);

void BM_PartitionLookup(benchmark::State& state) {
  std::vector<kv::PartitionEntry> entries;
  const int n = static_cast<int>(state.range(0));
  const uint64_t span = ~0ULL / static_cast<uint64_t>(n);
  for (int i = 0; i < n; ++i) {
    kv::PartitionEntry e;
    e.partition_id = static_cast<uint32_t>(i + 1);
    e.hash_lo = static_cast<uint64_t>(i) * span + (i == 0 ? 0 : 1);
    e.hash_hi = (i + 1 == n) ? ~0ULL : static_cast<uint64_t>(i + 1) * span;
    e.stream = static_cast<uint32_t>(i + 1);
    entries.push_back(e);
  }
  kv::PartitionMap map(entries);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.lookup_hash(rng.next()));
  }
}
BENCHMARK(BM_PartitionLookup)->Arg(2)->Arg(16)->Arg(64);

void BM_Rng(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Rng);

void BM_EventQueue(benchmark::State& state) {
  sim::Simulation sim;
  int sink = 0;
  for (auto _ : state) {
    sim.schedule_after(1, [&sink] { ++sink; });
    sim.step();
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_EventQueue);

/// Whole-cluster rate: one virtual second of a loaded 1-stream cluster
/// per iteration; items = delivered commands.
void BM_SimulatedClusterSecond(benchmark::State& state) {
  log::set_level(log::Level::kOff);
  harness::Cluster cluster;
  const auto s1 = cluster.add_stream();
  auto* r1 = cluster.add_replica(1, {s1});
  harness::LoadClient::Config cfg;
  cfg.threads = 8;
  cfg.payload_bytes = 1024;
  cfg.route = [s1] { return s1; };
  auto* client =
      cluster.spawn<harness::LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  uint64_t last = 0;
  for (auto _ : state) {
    cluster.run_for(kSecond);
    benchmark::DoNotOptimize(r1->delivered());
  }
  last = r1->delivered();
  state.SetItemsProcessed(static_cast<int64_t>(last));
}
BENCHMARK(BM_SimulatedClusterSecond);

}  // namespace
}  // namespace epx

BENCHMARK_MAIN();
