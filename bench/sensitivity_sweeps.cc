// Sensitivity sweeps over the deployment parameters the paper fixes
// (§VII-A): acceptor-ring size, batch limit, and value size. These
// quantify the design trade-offs DESIGN.md calls out — ring depth adds
// latency linearly but tolerates more failures; batching trades latency
// for instance-count efficiency; value size moves the bottleneck from
// CPU to NIC.
#include <cstdio>

#include "bench/bench_common.h"

using namespace epx;            // NOLINT(google-build-using-namespace)
using namespace epx::harness;   // NOLINT(google-build-using-namespace)

namespace {

struct Point {
  double ops = 0;
  double mbps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double cmds_per_instance = 0;
};

Point run(size_t acceptors, size_t batch_bytes, uint64_t value_bytes, size_t threads) {
  auto options = bench::broadcast_options();
  options.acceptors_per_stream = acceptors;
  options.params.batch_max_bytes = batch_bytes;
  Cluster cluster(options);
  const StreamId s1 = cluster.add_stream();
  elastic::Replica::Config rcfg;
  rcfg.group = 1;
  rcfg.initial_streams = {s1};
  rcfg.params = options.params;
  bench::tune_broadcast_replica(rcfg);
  auto* r1 = cluster.add_replica(rcfg);
  cluster.add_replica(rcfg);

  LoadClient::Config cfg;
  cfg.threads = threads;
  cfg.payload_bytes = value_bytes;
  cfg.route = [s1] { return s1; };
  auto* client = cluster.spawn<LoadClient>("client", &cluster.directory(), cfg);
  client->start();
  cluster.run_for(10 * kSecond);

  Point p;
  p.ops = r1->delivery_series().average_rate(2 * kSecond, 10 * kSecond);
  p.mbps = p.ops * static_cast<double>(value_bytes) * 8.0 / 1e6;
  p.p50_ms = to_millis(client->latency().p50());
  p.p95_ms = to_millis(client->latency().p95());
  auto* coord = cluster.coordinator(s1);
  if (coord->next_instance() > 0) {
    p.cmds_per_instance = static_cast<double>(coord->commands_proposed()) /
                          static_cast<double>(coord->next_instance());
  }
  return p;
}

}  // namespace

int main() {
  bench::bench_logging();
  std::printf("Sensitivity sweeps (one stream, 2 replicas, closed loop)\n");

  print_header("Ring size: acceptors per stream (8KB values, 16 threads)");
  std::printf("%10s %12s %10s %10s\n", "acceptors", "ops/s", "p50(ms)", "p95(ms)");
  double lat3 = 0, lat7 = 0;
  for (size_t a : {3u, 5u, 7u}) {
    const Point p = run(a, 64 * 1024, 8 * 1024, 16);
    std::printf("%10zu %12.0f %10.2f %10.2f\n", a, p.ops, p.p50_ms, p.p95_ms);
    if (a == 3) lat3 = p.p50_ms;
    if (a == 7) lat7 = p.p50_ms;
  }

  print_header("Batch limit (1KB values, 32 threads)");
  std::printf("%10s %12s %10s %10s %14s\n", "batch", "ops/s", "p50(ms)", "p95(ms)",
              "cmds/instance");
  double small_batch_eff = 0, big_batch_eff = 0;
  for (size_t b : {2u * 1024, 8u * 1024, 32u * 1024, 128u * 1024}) {
    const Point p = run(3, b, 1024, 32);
    std::printf("%9zuK %12.0f %10.2f %10.2f %14.1f\n", b / 1024, p.ops, p.p50_ms,
                p.p95_ms, p.cmds_per_instance);
    if (b == 2 * 1024) small_batch_eff = p.cmds_per_instance;
    if (b == 128 * 1024) big_batch_eff = p.cmds_per_instance;
  }

  print_header("Value size (16 threads)");
  std::printf("%10s %12s %10s %10s %10s\n", "value", "ops/s", "Mbps", "p50(ms)",
              "p95(ms)");
  for (uint64_t v : {1u * 1024, 4u * 1024, 16u * 1024, 32u * 1024, 64u * 1024}) {
    const Point p = run(3, 64 * 1024, v, 16);
    std::printf("%9lluK %12.0f %10.0f %10.2f %10.2f\n",
                static_cast<unsigned long long>(v / 1024), p.ops, p.mbps, p.p50_ms,
                p.p95_ms);
  }

  print_header("Paper checks");
  char measured[120];
  std::snprintf(measured, sizeof(measured), "p50 %.2f ms (3 acc) vs %.2f ms (7 acc)",
                lat3, lat7);
  paper_check("sweep.ring-depth", "deeper rings add per-hop latency", lat7 > lat3,
              measured);
  std::snprintf(measured, sizeof(measured), "%.1f vs %.1f cmds/instance",
                small_batch_eff, big_batch_eff);
  paper_check("sweep.batching",
              "larger batch limits amortise more commands per Paxos instance "
              "(at a latency cost visible in the p50 column)",
              big_batch_eff > small_batch_eff, measured);
  return 0;
}
