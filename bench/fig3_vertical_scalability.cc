// Figure 3 — Vertical scalability (paper §VII-C).
//
// "We start the experiment with a client VM (5 threads per stream) that
// sends 32 kbyte values to two replica VMs. We limited the single stream
// throughput to 30% not to saturate the replicas at the beginning of the
// experiment. Every 15 seconds replicas subscribe to a new stream and
// immediately deliver new commands from the added stream."
//
// Paper result: interval averages 735 -> 1498 -> 2391 -> 2660 ops/s; the
// fourth stream yields 3.62x the single-stream throughput because the
// replicas saturate. The prepare hint is intentionally NOT used, so a
// recovery spike is visible right after each subscription.
#include <cstdio>

#include "bench/bench_common.h"
#include "harness/telemetry_flags.h"
#include "harness/trace_flags.h"

using namespace epx;            // NOLINT(google-build-using-namespace)
using namespace epx::harness;   // NOLINT(google-build-using-namespace)

int main(int argc, char** argv) {
  bench::bench_logging();
  bench::parse_threads(argc, argv);
  const TraceFlags trace_flags = TraceFlags::parse(argc, argv);
  const TelemetryFlags telemetry_flags = TelemetryFlags::parse(argc, argv);
  auto options = bench::broadcast_options();
  options.params.admission_rate = 750.0;  // the paper's "30%" per-stream throttle
  // --durable reruns the figure with write-ahead acceptors so the
  // durability overhead (EXPERIMENTS.md) is measured on the same
  // workload; default stays diskless and prints byte-identical output.
  const bool durable = bench::parse_durable(argc, argv, options);
  telemetry_flags.apply(options);

  Cluster cluster(options);
  trace_flags.enable(cluster.sim());
  // All stream VMs are provisioned from the beginning (paper: "In this
  // experiment, all VMs are started up from the beginning").
  std::vector<StreamId> streams;
  for (int i = 0; i < 4; ++i) streams.push_back(cluster.add_stream());

  elastic::Replica::Config rcfg;
  rcfg.group = 1;
  rcfg.initial_streams = {streams[0]};
  rcfg.params = options.params;
  bench::tune_broadcast_replica(rcfg);
  auto* r1 = cluster.add_replica(rcfg);
  auto* r2 = cluster.add_replica(rcfg);
  (void)r2;

  // Per-stream delivery series at replica 1 (the figure's Stream 1..4
  // curves) plus the aggregate — all published by the replica into the
  // metrics registry as `replica.delivered{node=,stream=}`.
  const obs::MetricsRegistry& metrics = cluster.sim().metrics();
  auto stream_metric = [&](StreamId s) {
    return obs::metric_key("replica.delivered",
                           {{"node", r1->name()}, {"stream", std::to_string(s)}});
  };
  const std::string total_metric =
      obs::metric_key("replica.delivered", {{"node", r1->name()}});

  std::vector<LoadClient*> clients;
  auto make_client = [&](StreamId stream) {
    LoadClient::Config cfg;
    cfg.threads = 5;  // paper: 5 threads per stream
    cfg.payload_bytes = 32 * 1024;
    cfg.route = [stream] { return stream; };
    auto* c = cluster.spawn<LoadClient>("client_s" + std::to_string(stream),
                                        &cluster.directory(), cfg);
    clients.push_back(c);
    return c;
  };

  std::printf("Fig. 3 — Vertical scalability: subscribing a replica group to more "
              "streams at run time (32KB values, 5 threads/stream, per-stream "
              "throttle 750 ops/s, no prepare hint)\n");

  make_client(streams[0])->start();
  const std::vector<Tick> boundaries = {15 * kSecond, 30 * kSecond, 45 * kSecond};
  for (size_t phase = 1; phase < 4; ++phase) {
    cluster.run_until(boundaries[phase - 1]);
    cluster.controller().subscribe(1, streams[phase], streams[0]);
    make_client(streams[phase])->start();
  }
  const Tick end = 60 * kSecond;
  cluster.run_until(end);

  std::vector<RateColumn> columns;
  columns.push_back({"total", total_metric, 1.0});
  for (size_t i = 0; i < streams.size(); ++i) {
    columns.push_back({"stream" + std::to_string(i + 1), stream_metric(streams[i]), 1.0});
  }
  print_rate_table(metrics, "Throughput at replica 1 (ops/s)", columns, 0, end);
  print_phase_averages(metrics,
                       "Interval averages (paper: 735 / 1498 / 2391 / 2660 ops/s)",
                       total_metric, boundaries, end);

  Histogram all_latency;
  for (auto* c : clients) all_latency.merge(c->latency());
  print_header("Client latency (all streams)");
  std::printf("%s\n", all_latency.summary().c_str());

  const auto phases = phase_averages(r1->delivery_series(), boundaries, end);
  const double p1 = phases[0].rate, p2 = phases[1].rate, p3 = phases[2].rate,
               p4 = phases[3].rate;
  char measured[160];
  std::snprintf(measured, sizeof(measured),
                "%.0f / %.0f / %.0f / %.0f ops/s (x%.2f at 4 streams)", p1, p2, p3, p4,
                p4 / p1);
  print_header("Paper checks");
  paper_check("fig3.monotone", "each added stream increases throughput",
              p2 > p1 * 1.5 && p3 > p2 * 1.1 && p4 >= p3, measured);
  paper_check("fig3.2-streams", "2 streams ~ 2.0x one stream (paper 2.04x)",
              p2 / p1 > 1.7 && p2 / p1 < 2.3,
              (std::string("x") + std::to_string(p2 / p1)).c_str());
  paper_check("fig3.4-streams", "4 streams ~ 3.6x, replicas saturating (paper 3.62x)",
              p4 / p1 > 3.0 && p4 / p1 < 4.0,
              (std::string("x") + std::to_string(p4 / p1)).c_str());
  if (durable) bench::print_durability_summary(metrics);
  trace_flags.finish(cluster.sim());
  telemetry_flags.finish(cluster);
  return 0;
}
