// Shared calibration for the figure-reproduction benches.
//
// The simulator's resource model is calibrated once, here, and shared by
// every experiment (as the paper uses one OpenStack flavour for all
// three): 2-vCPU VMs on a virtualised network. Absolute numbers are not
// expected to match the paper's testbed; the calibration targets the
// figures' *shape* — per-stream caps, replica saturation points and NIC
// limits in the same proportions.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "harness/kv_cluster.h"
#include "harness/load_client.h"
#include "harness/report.h"
#include "util/logging.h"

namespace epx::bench {

/// VM NIC egress, bits/sec. Sized so a single unthrottled 32 KB-value
/// stream saturates around the paper's 550 Mbps application throughput
/// (Fig. 5): the quorum acceptor forwards the ring Accept and fans the
/// decision out to two replicas, ~96 KB of egress per 32 KB value.
inline constexpr double kNodeBandwidthBps = 2.2e9;

/// Broadcast workloads: 32 KB values (Figs. 3 and 5). The replica apply
/// cost sets the saturation point of the vertical-scalability
/// experiment at roughly 3.6x a single throttled stream.
inline harness::ClusterOptions broadcast_options() {
  harness::ClusterOptions options;
  options.node_bandwidth_bps = kNodeBandwidthBps;
  options.link = {200 * kMicrosecond, 50 * kMicrosecond};
  options.params.lambda = 4000.0;                   // paper §VII-A
  options.params.delta_t = 100 * kMillisecond;      // paper §VII-A
  options.params.batch_max_bytes = 64 * 1024;
  options.params.batch_max_delay = 1 * kMillisecond;
  return options;
}

/// Replica apply cost for 32 KB broadcast values: ~338 us/value
/// (50 us fixed + 32 KiB * 9 us/KiB) -> one replica saturates at
/// ~2.8k ops/s, clamping the fourth stream of Fig. 3 exactly as the
/// paper's replicas do (2660 ops/s = 3.62x one throttled stream).
inline void tune_broadcast_replica(elastic::Replica::Config& config) {
  config.apply_cpu_per_cmd = 50 * kMicrosecond;
  config.apply_cpu_per_kib = 9 * kMicrosecond;
}

/// KV workloads: 1 KB puts (Fig. 4). ~72 us/op -> a replica applying the
/// full command stream saturates near 14k ops/s; 100 closed-loop client
/// threads then load it to roughly 75% of peak as in the paper.
inline harness::ClusterOptions kv_options() {
  harness::ClusterOptions options;
  options.node_bandwidth_bps = kNodeBandwidthBps;
  options.link = {200 * kMicrosecond, 50 * kMicrosecond};
  // The paper's lambda = 4000 counts Paxos INSTANCES per second; one
  // instance batches ~10+ 1KB commands. Slots here are commands, so the
  // equivalent virtual-throughput cap is an order of magnitude higher.
  // Lambda must exceed the per-stream command rate or the stream is
  // throttled (and merge points become unreachable for new streams).
  options.params.lambda = 40000.0;
  options.params.delta_t = 100 * kMillisecond;
  options.params.batch_max_bytes = 32 * 1024;
  options.params.batch_max_delay = 1 * kMillisecond;
  options.apply_cpu_per_cmd = 70 * kMicrosecond;
  options.apply_cpu_per_kib = 2 * kMicrosecond;
  return options;
}

inline void bench_logging() { log::set_level(log::Level::kWarn); }

/// Four-region WAN topology for the geo thread-scaling series
/// (DESIGN.md §17): fast intra-region links, a heterogeneous WAN mesh
/// with one-way latencies in the 32-90 ms band (roughly the public
/// us-east / us-west / eu / ap figures). Region-affine allocation puts
/// each region's clique on its own shard, so every cross-shard link is
/// WAN-wide and the per-shard-pair lookahead matrix — not the global
/// minimum — sets the conservative window widths.
inline sim::Topology geo_topology() {
  sim::Topology topo;
  const auto us_east = topo.add_region("us-east");
  const auto us_west = topo.add_region("us-west");
  const auto eu = topo.add_region("eu");
  const auto ap = topo.add_region("ap");
  for (auto r : {us_east, us_west, eu, ap}) {
    topo.set_intra_region_link(r, {100 * kMicrosecond, 20 * kMicrosecond});
  }
  topo.set_region_link_symmetric(us_east, us_west, {32 * kMillisecond, kMillisecond});
  topo.set_region_link_symmetric(us_east, eu, {38 * kMillisecond, kMillisecond});
  topo.set_region_link_symmetric(us_east, ap, {90 * kMillisecond, 2 * kMillisecond});
  topo.set_region_link_symmetric(us_west, eu, {70 * kMillisecond, 2 * kMillisecond});
  topo.set_region_link_symmetric(us_west, ap, {51 * kMillisecond, kMillisecond});
  topo.set_region_link_symmetric(eu, ap, {80 * kMillisecond, 2 * kMillisecond});
  return topo;
}

/// Populates a cluster built with geo_topology(): one stream, one
/// replica and one 8-thread load client per region, each region's
/// processes pinned to its shard. The last region's replica also merges
/// the first region's stream, so steady state includes cross-region
/// (hence cross-shard, WAN-latency) delivery traffic rather than four
/// independent islands. Returns the replicas for delivered() harvesting.
inline std::vector<elastic::Replica*> build_geo_cluster(harness::Cluster& cluster) {
  const size_t regions = cluster.options().topology.region_count();
  std::vector<paxos::StreamId> streams;
  std::vector<elastic::Replica*> replicas;
  for (sim::Topology::RegionId r = 0; r < regions; ++r) {
    cluster.set_build_region(r);
    streams.push_back(cluster.add_stream());
  }
  for (sim::Topology::RegionId r = 0; r < regions; ++r) {
    cluster.set_build_region(r);
    std::vector<paxos::StreamId> subs{streams[r]};
    if (r + 1 == regions && regions > 1) subs.push_back(streams[0]);
    replicas.push_back(
        cluster.add_replica(static_cast<paxos::GroupId>(r + 1), subs));
    harness::LoadClient::Config cfg;
    cfg.threads = 8;
    cfg.payload_bytes = 1024;
    const paxos::StreamId s = streams[r];
    cfg.route = [s] { return s; };
    auto* client = cluster.spawn<harness::LoadClient>(
        "geo_client" + std::to_string(r + 1), &cluster.directory(), cfg);
    client->start();
  }
  return replicas;
}

/// Sums a counter metric across all label sets (all nodes).
inline uint64_t sum_counters(const obs::MetricsRegistry& metrics,
                             const std::string& name) {
  uint64_t total = 0;
  const std::string prefix = name + "{";
  for (const auto& [key, counter] : metrics.counters()) {
    if (key == name || key.compare(0, prefix.size(), prefix) == 0) {
      total += counter->total();
    }
  }
  return total;
}

/// Cluster-wide write-ahead-log cost summary printed by the --durable
/// figure variants: journal appends, device fsyncs (group-commit
/// efficiency = appends per fsync), bytes pushed to media, and the
/// fsync-wait distribution an acceptor pays before it may reply.
inline void print_durability_summary(const obs::MetricsRegistry& metrics) {
  harness::print_header("Durability cost (write-ahead acceptors)");
  const uint64_t appends = sum_counters(metrics, "wal.appends");
  const uint64_t fsyncs = sum_counters(metrics, "storage.fsync");
  const uint64_t bytes = sum_counters(metrics, "storage.fsync_bytes");
  const uint64_t checkpoints = sum_counters(metrics, "wal.checkpoints");
  const uint64_t compactions = sum_counters(metrics, "wal.compactions");
  std::printf("wal appends: %llu  fsyncs: %llu (%.1f appends/fsync)  "
              "flushed: %.1f MB  checkpoints: %llu  compactions: %llu\n",
              static_cast<unsigned long long>(appends),
              static_cast<unsigned long long>(fsyncs),
              fsyncs ? static_cast<double>(appends) / static_cast<double>(fsyncs) : 0.0,
              static_cast<double>(bytes) / 1e6,
              static_cast<unsigned long long>(checkpoints),
              static_cast<unsigned long long>(compactions));
  Histogram wait;
  const std::string prefix = "storage.fsync_wait{";
  for (const auto& [key, timer] : metrics.timers()) {
    if (key.compare(0, prefix.size(), prefix) == 0) wait.merge(timer->total());
  }
  std::printf("fsync wait: %s\n", wait.summary().c_str());
}

/// Parses --durable (and an optional --fsync-us=N override) into the
/// cluster options: acceptors journal promises and accepts through a
/// write-ahead store and withhold replies until the records are
/// durable. Default stays diskless so the published figure outputs are
/// untouched. Returns true when durable mode was requested.
inline bool parse_durable(int argc, char** argv, harness::ClusterOptions& options) {
  bool durable = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--durable") == 0) {
      durable = true;
      options.storage = paxos::StoragePolicy::kDurable;
    } else if (std::strncmp(argv[i], "--fsync-us=", 11) == 0) {
      const long us = std::strtol(argv[i] + 11, nullptr, 10);
      if (us >= 0) options.storage_device.fsync_latency = us * kMicrosecond;
    }
  }
  return durable;
}

/// Parses --threads=N and installs it as the harness-wide default, so
/// every cluster the driver builds runs on the N-shard parallel engine
/// (identical output to serial; see DESIGN.md §13). Returns the count
/// in effect (1 = serial).
inline size_t parse_threads(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const long n = std::strtol(argv[i] + 10, nullptr, 10);
      if (n > 0) harness::set_default_threads(static_cast<size_t>(n));
    }
  }
  return harness::default_threads();
}

}  // namespace epx::bench
